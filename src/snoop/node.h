#ifndef SENTINELD_SNOOP_NODE_H_
#define SENTINELD_SNOOP_NODE_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "event/event.h"
#include "snoop/context.h"
#include "timestamp/composite_timestamp.h"

namespace sentineld {

class Node;
class StateTape;

/// Timer facility temporal nodes (P, P*, PLUS) use to receive clock
/// callbacks; implemented by the Detector. Ticks are local ticks of the
/// detector's host site.
class TimerService {
 public:
  virtual ~TimerService() = default;

  /// Requests node->OnTimer(stamp, payload) once the host clock reaches
  /// `local_tick`; `stamp` will be the temporal primitive timestamp of
  /// the firing tick at the host site.
  virtual void ScheduleAt(Node* node, LocalTicks local_tick,
                          int64_t payload) = 0;
};

/// A node of the event-detection graph. Leaves are primitive event types;
/// internal nodes implement one Snoop operator under one parameter
/// context. Occurrences propagate bottom-up: a node that detects calls
/// Emit, which hands the new composite occurrence to each parent's
/// OnInput and to any registered sinks (rule callbacks).
///
/// Delivery contract: inputs must arrive in an order that is a linear
/// extension of the composite happen-before order `<` (i.e. if
/// Before(a.timestamp, b.timestamp) then a is delivered before b). Under
/// that contract the streaming detection below coincides, in the
/// kUnrestricted context, with the declarative Sec. 5.3 semantics
/// (verified against the oracle in tests). The distributed runtime's
/// Sequencer establishes the contract for cross-site streams; centralized
/// feeds establish it trivially.
///
/// Streaming-exactness of NESTED expressions: a node's *output* stream is
/// emitted in completion order, which is not always a linear extension of
/// `<` — an AND/ANY/SEQ occurrence may retain an old element concurrent
/// with its completing one (e.g. AND of an old `a` with a fresh `b`,
/// a ~ b), so its timestamp can be `<`-before events already delivered
/// downstream. Interval operators (A, NOT) fed such streams can therefore
/// decide before a relevant late sub-occurrence exists. Exact online
/// evaluation is impossible in general: a punctuation/low-watermark
/// scheme stalls on the unrestricted context's forever-retained state, so
/// the only exact evaluator for arbitrary nesting is the declarative
/// oracle (snoop/reference_detector.h). Depth-1 expressions (operators
/// over primitive streams) ARE exact; the measured nested divergence is
/// rare (< 1% of random depth-3 histories; pinned by
/// tests/expr_fuzz_test.cc) and documented in EXPERIMENTS.md.
class Node {
 public:
  Node(EventTypeId output_type, ParamContext context, size_t num_inputs)
      : context_(context),
        output_type_(output_type),
        num_inputs_(num_inputs) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivers an occurrence produced by child `index`.
  virtual void OnInput(size_t index, const EventPtr& event) = 0;

  /// Timer callback (see TimerService); default ignores.
  virtual void OnTimer(const PrimitiveTimestamp& stamp, int64_t payload);

  /// Registers `parent` to receive this node's occurrences on its input
  /// `input_index`.
  void AddParent(Node* parent, size_t input_index);

  /// Registers a terminal callback (rule firing); returns a token for
  /// RemoveSink.
  size_t AddSink(std::function<void(const EventPtr&)> sink);

  /// Detaches a previously added sink (idempotent).
  void RemoveSink(size_t token);

  /// Sets the interval policy (see snoop/context.h); the Detector calls
  /// this right after construction, before any input flows.
  void set_interval_policy(IntervalPolicy policy) {
    interval_policy_ = policy;
  }
  IntervalPolicy interval_policy() const { return interval_policy_; }

  EventTypeId output_type() const { return output_type_; }
  ParamContext context() const { return context_; }
  size_t num_inputs() const { return num_inputs_; }
  /// Registered parent edges — the fan-out a dispatch to this node
  /// touches (the SharedDetector's dag_dispatch_fanout accounting).
  size_t num_parents() const { return parents_.size(); }

  /// Occurrences emitted by this node since construction.
  uint64_t emit_count() const { return emit_count_; }

  /// Number of occurrences/stamps currently buffered by this node —
  /// the detector's retained-state metric (drives the GC tests and the
  /// memory column of the detection benchmarks). Stateless nodes report
  /// zero.
  virtual size_t StateSize() const { return 0; }

  /// Stable lower-case operator name ("seq", "not", ...) — the label key
  /// observability aggregates detector state by (obs/metrics.h
  /// detector_state).
  virtual const char* op_name() const = 0;

  /// Checkpoints this node's mutable state (buffered occurrences plus
  /// the base emit count) onto `tape` in a fixed order that LoadState
  /// mirrors exactly. Overrides must call the base first. Stateless
  /// operators inherit the base, which saves only the emit count. Used
  /// by Detector::SaveState for crash recovery (docs/recovery.md).
  virtual void SaveState(StateTape& tape) const;

  /// Restores state written by SaveState, replacing current contents
  /// (restore is amnesia plus the checkpoint, never a merge).
  virtual void LoadState(StateTape& tape);

 protected:
  /// Propagates a detected occurrence to parents and sinks.
  void Emit(const EventPtr& event);

  /// Builds and emits a composite occurrence of this node's output type.
  /// The span/initializer-list forms are the hot path (fixed-arity
  /// operator emissions build the constituent list inline, no heap); the
  /// vector form serves the cumulative paths that already gathered one.
  void EmitComposite(std::span<const EventPtr> constituents);
  void EmitComposite(std::initializer_list<EventPtr> constituents);
  void EmitComposite(std::vector<EventPtr> constituents);

  /// The operator-eligibility order under the configured IntervalPolicy:
  /// point-based compares occurrence stamps (the paper's `<`);
  /// interval-based requires `a`'s end to precede `b`'s start.
  bool EligibleBefore(const EventPtr& a, const EventPtr& b) const;

  /// Same, with `a` given as a bare end-stamp (recorded terminators).
  bool StampEligibleBefore(const CompositeTimestamp& a_end,
                           const EventPtr& b) const;

  ParamContext context_;
  IntervalPolicy interval_policy_ = IntervalPolicy::kPointBased;

 private:
  EventTypeId output_type_;
  size_t num_inputs_;
  std::vector<std::pair<Node*, size_t>> parents_;
  std::vector<std::function<void(const EventPtr&)>> sinks_;
  uint64_t emit_count_ = 0;
};

/// Leaf node: forwards occurrences of one primitive event type unchanged.
class PrimitiveNode final : public Node {
 public:
  explicit PrimitiveNode(EventTypeId type)
      : Node(type, ParamContext::kUnrestricted, 1) {}

  /// The detector routes matching primitive occurrences here.
  void Accept(const EventPtr& event) { Emit(event); }

  void OnInput(size_t index, const EventPtr& event) override;
  const char* op_name() const override { return "primitive"; }
};

/// E1 ∇ E2: every occurrence of either child is an occurrence of the
/// disjunction (its timestamp and constituent pass through, re-typed).
class OrNode final : public Node {
 public:
  OrNode(EventTypeId output_type, ParamContext context)
      : Node(output_type, context, 2) {}

  void OnInput(size_t index, const EventPtr& event) override;
  const char* op_name() const override { return "or"; }
};

/// E1 ∧ E2: conjunction, order-free. Timestamp: Max(t1, t2) (Sec. 5.3).
class AndNode final : public Node {
 public:
  AndNode(EventTypeId output_type, ParamContext context)
      : Node(output_type, context, 2) {}

  void OnInput(size_t index, const EventPtr& event) override;
  size_t StateSize() const override {
    return buffer_[0].size() + buffer_[1].size();
  }
  const char* op_name() const override { return "and"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  void EmitPair(const EventPtr& left, const EventPtr& right);

  std::vector<EventPtr> buffer_[2];
};

/// ANY(m, E1..En): detected when occurrences of m distinct constituent
/// events exist, irrespective of order (Snoop's ANY). The arriving
/// occurrence completes each detection, so every combination is emitted
/// exactly once in the unrestricted context. Context disciplines:
///   unrestricted — every (m-1)-selection from distinct other inputs;
///   recent       — latest occurrence per input; the m-1 others with the
///                  largest anchors pair, nothing is consumed;
///   chronicle    — FIFO per input; fronts of the lowest-indexed m-1
///                  non-empty other inputs pair and are consumed;
///   continuous   — like unrestricted, but all used occurrences are
///                  consumed;
///   cumulative   — one occurrence carrying everything buffered on the
///                  other inputs, all consumed.
class AnyNode final : public Node {
 public:
  AnyNode(EventTypeId output_type, ParamContext context, int threshold,
          size_t num_inputs)
      : Node(output_type, context, num_inputs),
        threshold_(threshold),
        buffers_(num_inputs) {}

  void OnInput(size_t index, const EventPtr& event) override;
  size_t StateSize() const override;
  const char* op_name() const override { return "any"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  /// Emits every combination of `needed` events drawn from distinct
  /// inputs in `pool_inputs` (recursion over input index), each combined
  /// with `base`.
  void EmitCombinations(const EventPtr& base, size_t arrival_index,
                        size_t from_input, int needed,
                        std::vector<EventPtr>& chosen);

  int threshold_;
  std::vector<std::vector<EventPtr>> buffers_;
};

/// E1 ; E2: sequence — requires Before(t1, t2) under the composite `<`
/// (Sec. 5.3). Initiators are E1 occurrences.
class SeqNode final : public Node {
 public:
  SeqNode(EventTypeId output_type, ParamContext context)
      : Node(output_type, context, 2) {}

  void OnInput(size_t index, const EventPtr& event) override;
  size_t StateSize() const override { return initiators_.size(); }
  const char* op_name() const override { return "seq"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  std::vector<EventPtr> initiators_;
};

/// ¬(E2)[E1, E3]: detected at an E3 occurrence e3 when an initiator e1
/// satisfies Before(t1, t3) and no E2 occurrence lies in the open
/// composite interval (t1, t3) (Defs 5.5 / Sec. 5.3). Inputs:
/// 0 = E2 (middle), 1 = E1 (initiator), 2 = E3 (terminator).
class NotNode final : public Node {
 public:
  NotNode(EventTypeId output_type, ParamContext context)
      : Node(output_type, context, 3) {}

  void OnInput(size_t index, const EventPtr& event) override;
  size_t StateSize() const override {
    return initiators_.size() + middles_.size();
  }
  const char* op_name() const override { return "not"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  bool MiddleInside(const EventPtr& e1, const EventPtr& e3) const;

  /// Drops middles that can no longer block any window. Under the
  /// linear-extension delivery contract a future initiator t1 with
  /// Before(t1, tm) for an already-buffered middle m is impossible (it
  /// would have been delivered before m), so a middle not strictly after
  /// any *buffered* initiator is dead state. Keeps NOT's memory bounded
  /// by live windows instead of the whole stream.
  void PruneMiddles();

  std::vector<EventPtr> initiators_;
  std::vector<EventPtr> middles_;
};

/// A(E1, E2, E3): each E2 occurrence inside an open window started by an
/// E1 and not yet closed by an E3 signals {e1, e2} with Max(t1, t2).
/// Inputs: 0 = E1, 1 = E2, 2 = E3.
class AperiodicNode final : public Node {
 public:
  AperiodicNode(EventTypeId output_type, ParamContext context)
      : Node(output_type, context, 3) {}

  void OnInput(size_t index, const EventPtr& event) override;
  size_t StateSize() const override;
  const char* op_name() const override { return "aperiodic"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  struct Window {
    EventPtr initiator;
    /// Terminator timestamps recorded against this window; an E2 with
    /// timestamp t2 is inside iff no recorded t3 has Before(t3, t2).
    /// Kept as the antichain of `<`-minimal terminators — a terminator
    /// dominated by an earlier one blocks strictly fewer E2s and is
    /// redundant — so the list stays bounded by the width of the order
    /// (at most one entry per site) rather than the stream length.
    std::vector<CompositeTimestamp> terminators;
  };

  static void RecordTerminator(Window& w, const CompositeTimestamp& t3);
  bool WindowOpenFor(const Window& w, const EventPtr& e2) const;

  std::vector<Window> windows_;
};

/// A*(E1, E2, E3): cumulative variant — at an E3 occurrence, every window
/// with Before(t1, t3) emits one occurrence carrying the initiator, all
/// accumulated E2s inside (t1, t3), and the terminator.
/// Inputs: 0 = E1, 1 = E2, 2 = E3.
class AperiodicStarNode final : public Node {
 public:
  AperiodicStarNode(EventTypeId output_type, ParamContext context)
      : Node(output_type, context, 3) {}

  void OnInput(size_t index, const EventPtr& event) override;
  size_t StateSize() const override;
  const char* op_name() const override { return "aperiodic_star"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  struct Window {
    EventPtr initiator;
    std::vector<EventPtr> middles;
  };

  std::vector<Window> windows_;
};

/// P(E1, period, E3): after an initiator, a temporal occurrence fires
/// every `period` host-site local ticks until a terminator with
/// Before(t1, t3) closes the window. Each firing emits {e1, tick}.
/// Inputs: 0 = E1, 1 = E3.
class PeriodicNode : public Node {
 public:
  PeriodicNode(EventTypeId output_type, ParamContext context,
               int64_t period_ticks, EventTypeId tick_type,
               TimerService* timers)
      : Node(output_type, context, 2),
        period_ticks_(period_ticks),
        tick_type_(tick_type),
        timers_(timers) {}

  void OnInput(size_t index, const EventPtr& event) override;
  void OnTimer(const PrimitiveTimestamp& stamp, int64_t payload) override;
  const char* op_name() const override { return "periodic"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 protected:
  /// Whether the cumulative variant is active (set by PeriodicStarNode).
  virtual bool cumulative() const { return false; }

  struct Window {
    int64_t id = 0;
    EventPtr initiator;
    bool closed = false;
    std::vector<EventPtr> ticks;  // only used by the cumulative variant
  };

  Window* FindWindow(int64_t id);
  void OpenWindow(const EventPtr& initiator);
  void CloseWindows(const EventPtr& terminator);

  int64_t period_ticks_;
  EventTypeId tick_type_;
  TimerService* timers_;
  std::vector<Window> windows_;
  int64_t next_window_id_ = 0;
};

/// P*(E1, period, E3): cumulative periodic — ticks accumulate and are
/// emitted as one occurrence {e1, ticks..., e3} at the terminator.
class PeriodicStarNode final : public PeriodicNode {
 public:
  using PeriodicNode::PeriodicNode;

  void OnInput(size_t index, const EventPtr& event) override;
  const char* op_name() const override { return "periodic_star"; }

 protected:
  bool cumulative() const override { return true; }
};

/// E1 + t: a single temporal occurrence t host-site local ticks after the
/// anchor of each initiator. Input: 0 = E1.
class PlusNode final : public Node {
 public:
  PlusNode(EventTypeId output_type, ParamContext context,
           int64_t period_ticks, EventTypeId tick_type, TimerService* timers)
      : Node(output_type, context, 1),
        period_ticks_(period_ticks),
        tick_type_(tick_type),
        timers_(timers) {}

  void OnInput(size_t index, const EventPtr& event) override;
  void OnTimer(const PrimitiveTimestamp& stamp, int64_t payload) override;
  const char* op_name() const override { return "plus"; }
  void SaveState(StateTape& tape) const override;
  void LoadState(StateTape& tape) override;

 private:
  int64_t period_ticks_;
  EventTypeId tick_type_;
  TimerService* timers_;
  std::vector<EventPtr> pending_;  // indexed by payload
};

/// The anchor tick of a composite timestamp: the maximum local tick among
/// its elements. Local ticks are calendar-aligned across sites to within
/// Pi, so this approximates "when the event happened" well enough to
/// schedule temporal follow-ups (documented approximation).
LocalTicks AnchorTick(const CompositeTimestamp& t);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_NODE_H_
