#ifndef SENTINELD_SNOOP_PARALLEL_DETECTOR_H_
#define SENTINELD_SNOOP_PARALLEL_DETECTOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "snoop/detector.h"
#include "snoop/detector_engine.h"
#include "snoop/spsc_queue.h"

namespace sentineld {

/// Sharded detection engine: rules are distributed across a fixed pool
/// of worker threads by a stable hash of the rule name, each shard
/// owning a private sequential Detector fed through a bounded SPSC
/// command queue.
///
/// Why sharding by rule is semantics-preserving (DESIGN.md §12): a
/// rule's detection depends only on the stream of its own constituent
/// types, delivered in linear-extension order. A rule never spans
/// shards, so each shard sees exactly the subsequence of the global
/// feed relevant to its rules, in the global order — per-shard
/// evaluation is the sequential semantics verbatim, and the Thm 5.1
/// composite-timestamp reasoning stays shard-local. Occurrences fan out
/// to every shard hosting a rule over their type (batched dispatch);
/// clock advances broadcast so temporal operators fire per shard.
///
/// Determinism: workers never run user code. Detections collect into
/// per-shard outboxes tagged with (global feed sequence, rule index,
/// emission index) and Drain() merges them in that order, firing rule
/// callbacks on the calling thread — so callback order is identical for
/// every shard count, and callers like DistributedRuntime stay
/// single-threaded.
///
/// Threading contract (docs/parallelism.md): the caller-facing surface
/// is single-threaded, exactly like Detector. AddRule/RemoveRule
/// quiesce the pool before touching shard graphs; accessors are exact
/// only after Drain().
class ParallelDetector final : public DetectorEngine {
 public:
  /// `options.detector_threads` (clamped to [1, 64]) sets the shard
  /// count; the remaining options configure each shard's Detector.
  ParallelDetector(EventTypeRegistry* registry, Detector::Options options);
  ~ParallelDetector() override;

  ParallelDetector(const ParallelDetector&) = delete;
  ParallelDetector& operator=(const ParallelDetector&) = delete;

  Result<EventTypeId> AddRule(const std::string& name, const ExprPtr& expr,
                              Callback callback) override;
  Status RemoveRule(const std::string& name) override;
  void Feed(const EventPtr& event) override;
  void AdvanceClockTo(LocalTicks now) override;
  void Drain() override;
  void set_tracer(Tracer* tracer) override { tracer_ = tracer; }

  LocalTicks clock() const override { return clock_; }
  size_t num_nodes() const override;
  size_t total_state() const override;
  std::map<std::string, size_t> StateByOp() const override;
  uint64_t events_fed() const override { return events_fed_; }
  uint64_t events_dropped() const override;
  uint64_t timers_fired() const override;

  size_t num_shards() const override { return shards_.size(); }
  size_t ShardOfRule(const std::string& name) const override {
    return ShardOf(name, shards_.size());
  }
  std::vector<DetectorShardStats> PerShardStats() const override;

  /// The stable rule-name hash placement (FNV-1a mod `num_shards`) —
  /// exposed so callers can pre-compute shard labels.
  static size_t ShardOf(const std::string& name, size_t num_shards);

 private:
  /// One unit of shard work: an occurrence to feed (event != nullptr) or
  /// a clock advance. `seq` is the global position in the caller's
  /// command stream — the primary detection merge key.
  struct Command {
    EventPtr event;
    LocalTicks advance_to = 0;
    uint64_t seq = 0;
  };

  /// A detection captured on a worker, ordered for delivery by
  /// (triggering command, rule registration index, emission index).
  struct PendingDetection {
    uint64_t seq = 0;
    uint32_t rule = 0;
    uint32_t emit = 0;
    EventPtr event;

    bool operator<(const PendingDetection& other) const {
      if (seq != other.seq) return seq < other.seq;
      if (rule != other.rule) return rule < other.rule;
      return emit < other.emit;
    }
  };

  struct Shard {
    std::unique_ptr<Detector> detector;
    SpscQueue<Command> queue{1024};
    /// Caller-side batch buffer (batched dispatch of sequencer
    /// releases): commands stage here and flush to the queue at batch
    /// granularity, on clock advances, and at Drain().
    std::vector<Command> staging;
    uint64_t enqueued = 0;  // caller-side; compared against processed
    /// Worker-side cursor for tagging detections.
    uint64_t current_seq = 0;
    uint32_t current_emit = 0;
    /// Commands fully dispatched (callbacks captured). The release
    /// store/acquire load pair is the quiescence happens-before edge.
    std::atomic<uint64_t> processed{0};
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    bool has_work = false;
    bool stop = false;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::mutex out_mu;
    std::vector<PendingDetection> outbox;
    std::thread worker;
  };

  struct RuleEntry {
    std::string name;
    size_t shard = 0;
    Callback callback;
    bool active = false;
  };

  void WorkerLoop(Shard* shard);
  void DispatchOn(Shard* shard, const Command& command);
  /// Moves a shard's staged commands into its queue and wakes the worker.
  void FlushShard(Shard* shard);
  void StageCommand(Shard* shard, Command command);
  /// Blocks until every enqueued command is processed on every shard.
  void AwaitQuiescent();

  EventTypeRegistry* registry_;
  Detector::Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RuleEntry> rules_;
  /// Event type -> bitmask of shards hosting a rule over that type.
  std::unordered_map<EventTypeId, uint64_t> routes_;
  uint64_t next_seq_ = 0;
  LocalTicks clock_ = 0;
  uint64_t events_fed_ = 0;
  uint64_t unrouted_dropped_ = 0;
  bool draining_ = false;
  Tracer* tracer_ = nullptr;
};

/// Engine factory, the single switch RuntimeConfig and
/// SentinelService::Options flow through. `options.engine` selects
/// explicitly (sequential / parallel / shared — see
/// snoop/shared_detector.h); under the default kAuto,
/// `options.detector_threads == 0` selects the sequential Detector and
/// N >= 1 a ParallelDetector with N shards.
std::unique_ptr<DetectorEngine> MakeDetectorEngine(
    EventTypeRegistry* registry, const Detector::Options& options);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_PARALLEL_DETECTOR_H_
