#include "snoop/shared_detector.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "snoop/canonical.h"
#include "snoop/state_tape.h"
#include "util/checked.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

SharedDetector::SharedDetector(EventTypeRegistry* registry,
                               Detector::Options options)
    : registry_(registry), options_(options) {
  CHECK(registry != nullptr);
  CHECK_OK(options.timebase.Validate());
}

SharedDetector::~SharedDetector() = default;

Result<EventTypeId> SharedDetector::TickType() {
  if (!tick_type_ready_) {
    Result<EventTypeId> id = registry_->GetOrRegister(
        StrCat("__tick_site", options_.host_site), EventClass::kTemporal);
    if (!id.ok()) return id;
    tick_type_ = *id;
    tick_type_ready_ = true;
  }
  return tick_type_;
}

Result<uint32_t> SharedDetector::BuildDag(const ExprPtr& expr) {
  // Children first: their interned ids are this node's canonical key,
  // and their live nodes are its inputs.
  std::vector<uint32_t> children;
  std::vector<uint64_t> child_hashes;
  children.reserve(expr->children.size());
  child_hashes.reserve(expr->children.size());
  for (const ExprPtr& child : expr->children) {
    Result<uint32_t> built = BuildDag(child);
    if (!built.ok()) return built;
    children.push_back(*built);
  }
  // AddRule canonicalized the expression, so commutative operands
  // already arrive in canonical spelling order: equal trees produce
  // equal child-id sequences here regardless of rule-addition order
  // (which also keeps input wiring — and therefore per-input node
  // state — stable across detectors for hash-keyed checkpoints).
  for (const uint32_t child : children) {
    child_hashes.push_back(dag_[child].hash);
  }
  uint64_t name_hash = 0;
  if (expr->kind == OpKind::kPrimitive) {
    Result<EventTypeRegistry::TypeInfo> info =
        registry_->Info(expr->primitive_type);
    if (!info.ok()) return info.status();
    name_hash = canonical::HashString(registry_->NameOf(expr->primitive_type));
  }
  const uint64_t hash =
      canonical::HashNode(expr->kind, expr->period_ticks, expr->any_threshold,
                          name_hash, std::move(child_hashes));

  // Intern probe: exact structural equality inside the hash bucket, so
  // a genuine 64-bit collision degrades to two nodes, never a merge.
  std::vector<uint32_t>& bucket = intern_[hash];
  for (const uint32_t id : bucket) {
    const DagNode& have = dag_[id];
    if (have.kind == expr->kind && have.period == expr->period_ticks &&
        have.threshold == expr->any_threshold &&
        (expr->kind != OpKind::kPrimitive ||
         have.primitive_type == expr->primitive_type) &&
        have.children == children) {
      ++sharing_hits_;
      return id;
    }
  }

  // Miss: construct the operator node exactly as Detector::BuildNode
  // does, then wire the (possibly reordered) children into it.
  std::unique_ptr<Node> node;
  if (expr->kind == OpKind::kPrimitive) {
    node = std::make_unique<PrimitiveNode>(expr->primitive_type);
  } else {
    Result<EventTypeId> output = registry_->GetOrRegister(
        expr->ToString(*registry_), EventClass::kComposite);
    if (!output.ok()) return output.status();
    switch (expr->kind) {
      case OpKind::kPrimitive:
        LOG_FATAL << "unreachable";
        break;
      case OpKind::kAnd:
        node = std::make_unique<AndNode>(*output, options_.context);
        break;
      case OpKind::kOr:
        node = std::make_unique<OrNode>(*output, options_.context);
        break;
      case OpKind::kSeq:
        node = std::make_unique<SeqNode>(*output, options_.context);
        break;
      case OpKind::kNot:
        node = std::make_unique<NotNode>(*output, options_.context);
        break;
      case OpKind::kAperiodic:
        node = std::make_unique<AperiodicNode>(*output, options_.context);
        break;
      case OpKind::kAperiodicStar:
        node =
            std::make_unique<AperiodicStarNode>(*output, options_.context);
        break;
      case OpKind::kPeriodic:
      case OpKind::kPeriodicStar: {
        Result<EventTypeId> tick = TickType();
        if (!tick.ok()) return tick.status();
        if (expr->kind == OpKind::kPeriodic) {
          node = std::make_unique<PeriodicNode>(
              *output, options_.context, expr->period_ticks, *tick, this);
        } else {
          node = std::make_unique<PeriodicStarNode>(
              *output, options_.context, expr->period_ticks, *tick, this);
        }
        break;
      }
      case OpKind::kPlus: {
        Result<EventTypeId> tick = TickType();
        if (!tick.ok()) return tick.status();
        node = std::make_unique<PlusNode>(*output, options_.context,
                                          expr->period_ticks, *tick, this);
        break;
      }
      case OpKind::kAny:
        node = std::make_unique<AnyNode>(*output, options_.context,
                                         expr->any_threshold,
                                         expr->children.size());
        break;
    }
    node->set_interval_policy(options_.interval_policy);
  }

  const uint32_t id = static_cast<uint32_t>(dag_.size());
  Node* raw = node.get();
  DagNode entry;
  entry.hash = hash;
  entry.kind = expr->kind;
  entry.period = expr->period_ticks;
  entry.threshold = expr->any_threshold;
  entry.primitive_type =
      expr->kind == OpKind::kPrimitive ? expr->primitive_type : 0;
  entry.children = children;
  entry.node = std::move(node);
  dag_.push_back(std::move(entry));
  bucket.push_back(id);
  node_ids_.emplace(raw, id);
  if (expr->kind == OpKind::kPrimitive) {
    dispatch_.emplace(expr->primitive_type, id);
  }
  for (size_t i = 0; i < children.size(); ++i) {
    dag_[children[i]].node->AddParent(raw, i);
  }
  return id;
}

Result<EventTypeId> SharedDetector::AddRule(const std::string& name,
                                            const ExprPtr& expr,
                                            Callback callback) {
  RETURN_IF_ERROR(ValidateExpr(expr));
  // Always canonicalize (commutative operands in spelling order): that
  // is what merges commuted spellings into one DAG node, and what makes
  // input wiring independent of the order rules were added in. The
  // `canonicalize_expressions` option is therefore implied here; like
  // the sequential engine under that option, emitted occurrences list
  // their constituents in canonical (not as-spelled) order.
  const ExprPtr compiled = CanonicalizeExpr(expr, *registry_);
  Result<uint32_t> root = BuildDag(compiled);
  if (!root.ok()) return root.status();
  Node* root_node = dag_[*root].node.get();
  RuleInfo info{name, root_node->output_type(), compiled, *root, 0, false};
  if (callback) {
    info.sink_token = root_node->AddSink(std::move(callback));
    info.has_sink = true;
  }
  // Register the rule's name as an alias type so other rules / external
  // consumers can reference the output; the node keeps emitting under
  // its canonical expression type (the FIRST spelling that interned it).
  Result<EventTypeId> alias =
      registry_->GetOrRegister(name, EventClass::kComposite);
  if (!alias.ok()) return alias.status();
  rules_.push_back(std::move(info));
  return root_node->output_type();
}

Status SharedDetector::RemoveRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->name != name) continue;
    if (it->has_sink) dag_[it->root].node->RemoveSink(it->sink_token);
    rules_.erase(it);
    return Status::Ok();
  }
  return Status::NotFound(StrCat("rule '", name, "'"));
}

size_t SharedDetector::total_state() const {
  size_t total = 0;
  for (const DagNode& entry : dag_) total += entry.node->StateSize();
  return total;
}

std::map<std::string, size_t> SharedDetector::StateByOp() const {
  std::map<std::string, size_t> by_op;
  for (const DagNode& entry : dag_) {
    by_op[entry.node->op_name()] += entry.node->StateSize();
  }
  return by_op;
}

DetectorDagStats SharedDetector::DagStats() const {
  DetectorDagStats stats;
  stats.valid = true;
  stats.dag_nodes = dag_.size();
  stats.sharing_hits = sharing_hits_;
  stats.dispatch_probes = dispatch_probes_;
  stats.dispatch_touched = dispatch_touched_;
  return stats;
}

void SharedDetector::Feed(const EventPtr& event) {
  CHECK(event != nullptr);
  ++events_fed_;
  SENTINELD_TRACE_EVENT(tracer_, TracePhase::kFeed, options_.host_site,
                        event);
  const auto it = dispatch_.find(event->type());
  if (it == dispatch_.end()) {
    ++events_dropped_;
    return;
  }
  Node* leaf = dag_[it->second].node.get();
  ++dispatch_probes_;
  dispatch_touched_ += leaf->num_parents();
  static_cast<PrimitiveNode*>(leaf)->Accept(event);
}

void SharedDetector::ScheduleAt(Node* node, LocalTicks local_tick,
                                int64_t payload) {
  timers_.push(TimerEntry{local_tick, timer_seq_++, node, payload});
}

void SharedDetector::AdvanceClockTo(LocalTicks now) {
  CHECK_GE(now, clock_);
  clock_ = now;
  while (!timers_.empty() && timers_.top().tick <= now) {
    const TimerEntry entry = timers_.top();
    timers_.pop();
    ++timers_fired_;
    const PrimitiveTimestamp stamp = MakeTimerStamp(
        options_.timebase_kind, options_.host_site, entry.tick,
        options_.timebase);
    entry.node->OnTimer(stamp, entry.payload);
  }
}

int64_t SharedDetector::BucketPos(uint32_t id) const {
  const auto it = intern_.find(dag_[id].hash);
  CHECK(it != intern_.end());
  for (size_t pos = 0; pos < it->second.size(); ++pos) {
    if (it->second[pos] == id) return static_cast<int64_t>(pos);
  }
  LOG_FATAL << "DAG node missing from its intern bucket";
  return 0;
}

uint32_t SharedDetector::ResolveNode(uint64_t hash,
                                     int64_t bucket_pos) const {
  const auto it = intern_.find(hash);
  CHECK(it != intern_.end());  // checkpoint from a different rule set
  // Singleton buckets (the non-collision case) resolve by hash alone,
  // which is what makes restore rule-order-robust; a genuine 64-bit
  // collision falls back to the saved bucket position.
  if (it->second.size() == 1) return it->second[0];
  CHECK_GE(bucket_pos, 0);
  CHECK_LT(static_cast<size_t>(bucket_pos), it->second.size());
  return it->second[static_cast<size_t>(bucket_pos)];
}

void SharedDetector::SaveState(StateTape& tape) const {
  tape.PutInt(clock_);
  tape.PutInt(static_cast<int64_t>(timer_seq_));
  tape.PutInt(static_cast<int64_t>(events_fed_));
  tape.PutInt(static_cast<int64_t>(events_dropped_));
  tape.PutInt(static_cast<int64_t>(timers_fired_));
  tape.PutInt(static_cast<int64_t>(dag_.size()));
  // Every node keyed by canonical hash (plus its bucket position, which
  // only matters under 64-bit collisions) so LoadState can resolve the
  // entry through ITS intern table regardless of rule-addition order.
  for (uint32_t id = 0; id < dag_.size(); ++id) {
    tape.PutInt(static_cast<int64_t>(dag_[id].hash));
    tape.PutInt(BucketPos(id));
    dag_[id].node->SaveState(tape);
  }
  // Pending timers, enumerated in firing order by draining a heap copy;
  // owners keyed like the nodes above.
  auto timers = timers_;
  tape.PutInt(static_cast<int64_t>(timers.size()));
  while (!timers.empty()) {
    const TimerEntry& entry = timers.top();
    const auto it = node_ids_.find(entry.node);
    CHECK(it != node_ids_.end());
    tape.PutInt(static_cast<int64_t>(dag_[it->second].hash));
    tape.PutInt(BucketPos(it->second));
    tape.PutInt(entry.tick);
    tape.PutInt(static_cast<int64_t>(entry.seq));
    tape.PutInt(entry.payload);
    timers.pop();
  }
}

void SharedDetector::LoadState(StateTape& tape) {
  clock_ = tape.TakeInt();
  timer_seq_ = static_cast<uint64_t>(tape.TakeInt());
  events_fed_ = static_cast<uint64_t>(tape.TakeInt());
  events_dropped_ = static_cast<uint64_t>(tape.TakeInt());
  timers_fired_ = static_cast<uint64_t>(tape.TakeInt());
  // LoadState requires a detector built from the same rule SET (any
  // order) — the node count plus per-node hash resolution is the
  // structural fingerprint.
  const int64_t num_nodes = tape.TakeInt();
  CHECK_EQ(static_cast<size_t>(num_nodes), dag_.size());
  for (int64_t i = 0; i < num_nodes; ++i) {
    const auto hash = static_cast<uint64_t>(tape.TakeInt());
    const int64_t bucket_pos = tape.TakeInt();
    dag_[ResolveNode(hash, bucket_pos)].node->LoadState(tape);
  }
  timers_ = {};
  const int64_t num_timers = tape.TakeInt();
  for (int64_t i = 0; i < num_timers; ++i) {
    const auto hash = static_cast<uint64_t>(tape.TakeInt());
    const int64_t bucket_pos = tape.TakeInt();
    const LocalTicks tick = tape.TakeInt();
    const auto seq = static_cast<uint64_t>(tape.TakeInt());
    const int64_t payload = tape.TakeInt();
    timers_.push(TimerEntry{
        tick, seq, dag_[ResolveNode(hash, bucket_pos)].node.get(), payload});
  }
}

}  // namespace sentineld
