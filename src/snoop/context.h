#ifndef SENTINELD_SNOOP_CONTEXT_H_
#define SENTINELD_SNOOP_CONTEXT_H_

namespace sentineld {

/// Sentinel / Snoop parameter contexts (Chakravarthy et al., VLDB'94):
/// policies restricting which constituent occurrences are paired when a
/// composite event can be detected in multiple ways.
///
/// In a distributed system "most recent" and "oldest" are only partially
/// ordered; sentineld resolves ties among concurrent/incomparable
/// candidates by arrival order at the detecting node (documented
/// tie-break; the timestamps carried by emitted events are always the
/// exact Max over the chosen constituents).
enum class ParamContext {
  /// Every combination of constituent occurrences that satisfies the
  /// operator semantics is detected; nothing is consumed. This is the
  /// declarative Sec. 5.3 semantics and the reference the oracle detector
  /// implements.
  kUnrestricted,
  /// Only the most recent initiator is retained; constituents are not
  /// consumed on detection, merely superseded by newer occurrences.
  kRecent,
  /// Initiator/terminator pairs in chronological (FIFO) order; paired
  /// occurrences are consumed.
  kChronicle,
  /// Every initiator starts an independent detection; a terminator
  /// detects with ALL eligible initiators and consumes them.
  kContinuous,
  /// All eligible constituent occurrences are accumulated and emitted in
  /// a single composite occurrence at the terminator, then consumed.
  kCumulative,
};

const char* ParamContextToString(ParamContext context);

/// How operator eligibility treats composite occurrences that extend
/// over time (extension beyond the paper; see docs/semantics.md):
///
///   kPointBased    — the paper's semantics: an occurrence is the single
///                    point T(e) = Max over constituents, so `E1 ; E2`
///                    needs T(e1) < T(e2). A sequence's stamp collapses
///                    to its terminator, which yields the classic
///                    anomaly: "B ; (A ; C)" can detect even though the
///                    A inside the second operand occurred BEFORE B.
///   kIntervalBased — an occurrence spans [interval_start, T(e)] (start =
///                    minima over constituents, the dual of Def 5.1);
///                    eligibility requires the initiator's END to precede
///                    the other occurrence's START, eliminating the
///                    anomaly (Galton & Augusto's critique of
///                    detection-based semantics, applied to the paper's
///                    partial-order timestamps).
///
/// bench/interval_anomaly quantifies the difference.
enum class IntervalPolicy { kPointBased, kIntervalBased };

const char* IntervalPolicyToString(IntervalPolicy policy);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_CONTEXT_H_
