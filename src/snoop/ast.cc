#include "snoop/ast.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

ExprPtr MakeExpr(OpKind kind, std::vector<ExprPtr> children,
                 int64_t period_ticks = 0) {
  auto expr = std::make_shared<Expr>();
  expr->kind = kind;
  expr->children = std::move(children);
  expr->period_ticks = period_ticks;
  for (const auto& child : expr->children) CHECK(child != nullptr);
  return expr;
}

void CollectTypes(const ExprPtr& expr, std::vector<EventTypeId>& out) {
  if (expr->kind == OpKind::kPrimitive) {
    out.push_back(expr->primitive_type);
    return;
  }
  for (const auto& child : expr->children) CollectTypes(child, out);
}

}  // namespace

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kPrimitive:
      return "prim";
    case OpKind::kAnd:
      return "and";
    case OpKind::kOr:
      return "or";
    case OpKind::kSeq:
      return ";";
    case OpKind::kNot:
      return "not";
    case OpKind::kAperiodic:
      return "A";
    case OpKind::kAperiodicStar:
      return "A*";
    case OpKind::kPeriodic:
      return "P";
    case OpKind::kPeriodicStar:
      return "P*";
    case OpKind::kPlus:
      return "plus";
    case OpKind::kAny:
      return "ANY";
  }
  return "?";
}

std::string Expr::ToString(const EventTypeRegistry& registry) const {
  switch (kind) {
    case OpKind::kPrimitive:
      return registry.NameOf(primitive_type);
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kSeq:
      return StrCat("(", children[0]->ToString(registry), " ",
                    OpKindToString(kind), " ",
                    children[1]->ToString(registry), ")");
    case OpKind::kNot:
      // The paper's notation ¬(E2)[E1, E3].
      return StrCat("not(", children[0]->ToString(registry), ")[",
                    children[1]->ToString(registry), ", ",
                    children[2]->ToString(registry), "]");
    case OpKind::kAperiodic:
    case OpKind::kAperiodicStar:
      return StrCat(OpKindToString(kind), "(",
                    children[0]->ToString(registry), ", ",
                    children[1]->ToString(registry), ", ",
                    children[2]->ToString(registry), ")");
    case OpKind::kPeriodic:
    case OpKind::kPeriodicStar:
      return StrCat(OpKindToString(kind), "(",
                    children[0]->ToString(registry), ", ", period_ticks,
                    "t, ", children[1]->ToString(registry), ")");
    case OpKind::kPlus:
      return StrCat("(", children[0]->ToString(registry), " + ",
                    period_ticks, "t)");
    case OpKind::kAny: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const auto& child : children) {
        parts.push_back(child->ToString(registry));
      }
      return StrCat("ANY(", any_threshold, ", ", Join(parts, ", "), ")");
    }
  }
  return "?";
}

ExprPtr Prim(EventTypeId type) {
  auto expr = std::make_shared<Expr>();
  expr->kind = OpKind::kPrimitive;
  expr->primitive_type = type;
  return expr;
}

ExprPtr And(ExprPtr left, ExprPtr right) {
  return MakeExpr(OpKind::kAnd, {std::move(left), std::move(right)});
}

ExprPtr Or(ExprPtr left, ExprPtr right) {
  return MakeExpr(OpKind::kOr, {std::move(left), std::move(right)});
}

ExprPtr Seq(ExprPtr first, ExprPtr second) {
  return MakeExpr(OpKind::kSeq, {std::move(first), std::move(second)});
}

ExprPtr Not(ExprPtr middle, ExprPtr initiator, ExprPtr terminator) {
  return MakeExpr(OpKind::kNot, {std::move(middle), std::move(initiator),
                                 std::move(terminator)});
}

ExprPtr Aperiodic(ExprPtr initiator, ExprPtr middle, ExprPtr terminator) {
  return MakeExpr(OpKind::kAperiodic,
                  {std::move(initiator), std::move(middle),
                   std::move(terminator)});
}

ExprPtr AperiodicStar(ExprPtr initiator, ExprPtr middle,
                      ExprPtr terminator) {
  return MakeExpr(OpKind::kAperiodicStar,
                  {std::move(initiator), std::move(middle),
                   std::move(terminator)});
}

ExprPtr Periodic(ExprPtr initiator, int64_t period_ticks,
                 ExprPtr terminator) {
  CHECK_GT(period_ticks, 0);
  return MakeExpr(OpKind::kPeriodic,
                  {std::move(initiator), std::move(terminator)},
                  period_ticks);
}

ExprPtr PeriodicStar(ExprPtr initiator, int64_t period_ticks,
                     ExprPtr terminator) {
  CHECK_GT(period_ticks, 0);
  return MakeExpr(OpKind::kPeriodicStar,
                  {std::move(initiator), std::move(terminator)},
                  period_ticks);
}

ExprPtr Plus(ExprPtr initiator, int64_t period_ticks) {
  CHECK_GT(period_ticks, 0);
  return MakeExpr(OpKind::kPlus, {std::move(initiator)}, period_ticks);
}

ExprPtr Any(int threshold, std::vector<ExprPtr> children) {
  CHECK_GE(children.size(), 2u);
  CHECK_GE(threshold, 1);
  CHECK_LE(threshold, static_cast<int>(children.size()));
  auto expr = std::make_shared<Expr>();
  expr->kind = OpKind::kAny;
  expr->children = std::move(children);
  expr->any_threshold = threshold;
  for (const auto& child : expr->children) CHECK(child != nullptr);
  return expr;
}

Status ValidateExpr(const ExprPtr& expr) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  if (expr->kind == OpKind::kAny) {
    if (expr->children.size() < 2) {
      return Status::InvalidArgument("ANY needs at least two children");
    }
    if (expr->any_threshold < 1 ||
        expr->any_threshold > static_cast<int>(expr->children.size())) {
      return Status::InvalidArgument(
          StrCat("ANY threshold ", expr->any_threshold, " out of range"));
    }
    for (const auto& child : expr->children) {
      RETURN_IF_ERROR(ValidateExpr(child));
    }
    return Status::Ok();
  }
  if (expr->any_threshold != 0) {
    return Status::InvalidArgument("unexpected ANY threshold");
  }
  size_t want_children = 0;
  switch (expr->kind) {
    case OpKind::kPrimitive:
      want_children = 0;
      break;
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kSeq:
    case OpKind::kPeriodic:
    case OpKind::kPeriodicStar:
      want_children = 2;
      break;
    case OpKind::kNot:
    case OpKind::kAperiodic:
    case OpKind::kAperiodicStar:
      want_children = 3;
      break;
    case OpKind::kPlus:
      want_children = 1;
      break;
    case OpKind::kAny:
      break;  // handled above
  }
  if (expr->children.size() != want_children) {
    return Status::InvalidArgument(
        StrCat("operator ", OpKindToString(expr->kind), " expects ",
               want_children, " children, got ", expr->children.size()));
  }
  const bool needs_period = expr->kind == OpKind::kPeriodic ||
                            expr->kind == OpKind::kPeriodicStar ||
                            expr->kind == OpKind::kPlus;
  if (needs_period && expr->period_ticks <= 0) {
    return Status::InvalidArgument("period must be positive");
  }
  if (!needs_period && expr->period_ticks != 0) {
    return Status::InvalidArgument("unexpected period on non-temporal op");
  }
  for (const auto& child : expr->children) {
    RETURN_IF_ERROR(ValidateExpr(child));
  }
  return Status::Ok();
}

std::vector<EventTypeId> CollectPrimitiveTypes(const ExprPtr& expr) {
  std::vector<EventTypeId> types;
  CollectTypes(expr, types);
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());
  return types;
}

size_t ExprSize(const ExprPtr& expr) {
  size_t n = 1;
  for (const auto& child : expr->children) n += ExprSize(child);
  return n;
}

ExprPtr CanonicalizeExpr(const ExprPtr& expr,
                         const EventTypeRegistry& registry) {
  if (expr->kind == OpKind::kPrimitive) return expr;
  auto copy = std::make_shared<Expr>(*expr);
  for (ExprPtr& child : copy->children) {
    child = CanonicalizeExpr(child, registry);
  }
  const bool commutative = expr->kind == OpKind::kAnd ||
                           expr->kind == OpKind::kOr ||
                           expr->kind == OpKind::kAny;
  if (commutative) {
    std::sort(copy->children.begin(), copy->children.end(),
              [&](const ExprPtr& a, const ExprPtr& b) {
                return a->ToString(registry) < b->ToString(registry);
              });
  }
  return ExprPtr(copy);
}

Result<ExprPtr> SubexprAt(const ExprPtr& root,
                          std::span<const size_t> path) {
  ExprPtr node = root;
  for (size_t index : path) {
    if (node == nullptr || index >= node->children.size()) {
      return Status::NotFound("path leaves the expression tree");
    }
    node = node->children[index];
  }
  if (node == nullptr) return Status::NotFound("null subexpression");
  return node;
}

Result<ExprPtr> ReplaceSubexpr(const ExprPtr& root,
                               std::span<const size_t> path,
                               ExprPtr replacement) {
  if (path.empty()) return replacement;
  if (root == nullptr || path.front() >= root->children.size()) {
    return Status::NotFound("path leaves the expression tree");
  }
  Result<ExprPtr> child = ReplaceSubexpr(
      root->children[path.front()], path.subspan(1), std::move(replacement));
  if (!child.ok()) return child;
  auto copy = std::make_shared<Expr>(*root);
  copy->children[path.front()] = *child;
  return ExprPtr(copy);
}

}  // namespace sentineld
