#include "snoop/parallel_detector.h"

#include <algorithm>
#include <bit>
#include <iterator>

#include "obs/trace.h"
#include "snoop/shared_detector.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

/// Shard routing masks are uint64_t, which caps the pool width.
constexpr size_t kMaxShards = 64;
/// Caller-side staging flushes to the SPSC queue at this granularity
/// (and unconditionally on clock advances and Drain).
constexpr size_t kBatchSize = 64;

/// The primitive leaf types of `expr` — the types whose occurrences the
/// compiled graph subscribes to (same set the sequential Detector builds
/// PrimitiveNodes for).
void CollectLeafTypes(const ExprPtr& expr, std::vector<EventTypeId>& out) {
  if (expr == nullptr) return;
  if (expr->kind == OpKind::kPrimitive) {
    out.push_back(expr->primitive_type);
    return;
  }
  for (const ExprPtr& child : expr->children) CollectLeafTypes(child, out);
}

}  // namespace

size_t ParallelDetector::ShardOf(const std::string& name,
                                 size_t num_shards) {
  // FNV-1a: stable across platforms and standard-library versions, so
  // shard labels in snapshots stay comparable between runs and hosts.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return num_shards == 0 ? 0 : hash % num_shards;
}

ParallelDetector::ParallelDetector(EventTypeRegistry* registry,
                                   Detector::Options options)
    : registry_(registry), options_(options) {
  CHECK(registry != nullptr);
  const size_t shards = std::clamp<size_t>(options.detector_threads, 1,
                                           kMaxShards);
  // Shards host plain sequential Detectors; the field selecting this
  // engine must not recurse into them.
  options_.detector_threads = 0;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->detector = std::make_unique<Detector>(registry_, options_);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      WorkerLoop(raw);
    });
  }
}

ParallelDetector::~ParallelDetector() {
  Drain();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->wake_mu);
      shard->stop = true;
      shard->has_work = true;
    }
    shard->wake_cv.notify_one();
  }
  for (auto& shard : shards_) shard->worker.join();
}

void ParallelDetector::WorkerLoop(Shard* shard) {
  Command command;
  while (true) {
    if (shard->queue.TryPop(command)) {
      DispatchOn(shard, command);
      shard->processed.fetch_add(1, std::memory_order_release);
      if (shard->queue.Empty()) {
        // The empty critical section pairs with AwaitQuiescent's wait:
        // the waiter either sees the processed store in its predicate or
        // is already parked when this notify lands.
        { std::lock_guard<std::mutex> lock(shard->done_mu); }
        shard->done_cv.notify_all();
      }
      continue;
    }
    // Brief spin before parking: heartbeat batches arrive in bursts.
    bool popped = false;
    for (int i = 0; i < 4096 && !popped; ++i) {
      popped = shard->queue.TryPop(command);
    }
    if (popped) {
      DispatchOn(shard, command);
      shard->processed.fetch_add(1, std::memory_order_release);
      if (shard->queue.Empty()) {
        { std::lock_guard<std::mutex> lock(shard->done_mu); }
        shard->done_cv.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(shard->wake_mu);
    shard->has_work = false;
    // Re-check under the parked flag: a producer that pushed before
    // seeing has_work=false left work in the queue.
    if (!shard->queue.Empty()) continue;
    if (shard->stop) return;
    shard->wake_cv.wait(lock,
                        [shard] { return shard->has_work || shard->stop; });
    if (shard->stop && shard->queue.Empty()) return;
  }
}

void ParallelDetector::DispatchOn(Shard* shard, const Command& command) {
  shard->current_seq = command.seq;
  shard->current_emit = 0;
  if (command.event != nullptr) {
    shard->detector->Feed(command.event);
  } else {
    shard->detector->AdvanceClockTo(command.advance_to);
  }
}

void ParallelDetector::StageCommand(Shard* shard, Command command) {
  shard->staging.push_back(std::move(command));
  if (shard->staging.size() >= kBatchSize) FlushShard(shard);
}

void ParallelDetector::FlushShard(Shard* shard) {
  if (shard->staging.empty()) return;
  for (Command& command : shard->staging) {
    while (!shard->queue.TryPush(std::move(command))) {
      // Queue full: the worker is behind; yielding beats growing an
      // unbounded buffer (natural backpressure).
      std::this_thread::yield();
    }
  }
  shard->enqueued += shard->staging.size();
  shard->staging.clear();
  {
    std::lock_guard<std::mutex> lock(shard->wake_mu);
    shard->has_work = true;
  }
  shard->wake_cv.notify_one();
}

void ParallelDetector::AwaitQuiescent() {
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued;
    if (shard->processed.load(std::memory_order_acquire) >= target) continue;
    std::unique_lock<std::mutex> lock(shard->done_mu);
    shard->done_cv.wait(lock, [&shard, target] {
      return shard->processed.load(std::memory_order_acquire) >= target;
    });
  }
}

void ParallelDetector::Drain() {
  if (draining_) return;  // a rule callback re-entered via Feed+Drain
  draining_ = true;
  std::vector<PendingDetection> pending;
  while (true) {
    for (auto& shard : shards_) FlushShard(shard.get());
    AwaitQuiescent();
    pending.clear();
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->out_mu);
      pending.insert(pending.end(),
                     std::make_move_iterator(shard->outbox.begin()),
                     std::make_move_iterator(shard->outbox.end()));
      shard->outbox.clear();
    }
    if (pending.empty()) break;
    // Deterministic delivery: global feed order, then rule registration
    // order, then emission order — identical for every shard count.
    std::sort(pending.begin(), pending.end());
    for (const PendingDetection& detection : pending) {
      const RuleEntry& rule = rules_[detection.rule];
      if (rule.callback) rule.callback(detection.event);
    }
    // Callbacks may have fed follow-up occurrences; loop until the
    // pool is quiescent with nothing left to deliver.
  }
  draining_ = false;
}

Result<EventTypeId> ParallelDetector::AddRule(const std::string& name,
                                              const ExprPtr& expr,
                                              Callback callback) {
  // Quiesce before touching a shard's graph or the shared registry:
  // workers only run while commands are in flight, so a drained pool
  // makes caller-side compilation race-free.
  Drain();
  const size_t shard_index = ShardOfRule(name);
  Shard* shard = shards_[shard_index].get();
  const uint32_t rule_index = static_cast<uint32_t>(rules_.size());
  Detector::Callback sink;
  if (callback) {
    sink = [shard, rule_index](const EventPtr& event) {
      std::lock_guard<std::mutex> lock(shard->out_mu);
      shard->outbox.push_back(PendingDetection{
          shard->current_seq, rule_index, shard->current_emit++, event});
    };
  }
  Result<EventTypeId> added =
      shard->detector->AddRule(name, expr, std::move(sink));
  if (!added.ok()) return added;
  rules_.push_back(RuleEntry{name, shard_index, std::move(callback), true});
  std::vector<EventTypeId> leaves;
  CollectLeafTypes(expr, leaves);
  for (const EventTypeId type : leaves) {
    routes_[type] |= uint64_t{1} << shard_index;
  }
  return added;
}

Status ParallelDetector::RemoveRule(const std::string& name) {
  Drain();
  for (RuleEntry& rule : rules_) {
    if (!rule.active || rule.name != name) continue;
    RETURN_IF_ERROR(shards_[rule.shard]->detector->RemoveRule(name));
    rule.active = false;
    rule.callback = nullptr;
    // Routes stay: the shard's graph keeps the rule's nodes (mirroring
    // the sequential engine), so its stream keeps counting as fed.
    return Status::Ok();
  }
  return Status::NotFound(StrCat("rule '", name, "'"));
}

void ParallelDetector::Feed(const EventPtr& event) {
  CHECK(event != nullptr);
  ++events_fed_;
  SENTINELD_TRACE_EVENT(tracer_, TracePhase::kFeed, options_.host_site,
                        event);
  const auto it = routes_.find(event->type());
  if (it == routes_.end()) {
    ++unrouted_dropped_;
    ++next_seq_;
    return;
  }
  uint64_t mask = it->second;
  while (mask != 0) {
    const size_t shard_index =
        static_cast<size_t>(std::countr_zero(mask));
    mask &= mask - 1;
    StageCommand(shards_[shard_index].get(),
                 Command{event, 0, next_seq_});
  }
  ++next_seq_;
}

void ParallelDetector::AdvanceClockTo(LocalTicks now) {
  CHECK_GE(now, clock_);
  clock_ = now;
  for (auto& shard : shards_) {
    StageCommand(shard.get(), Command{nullptr, now, next_seq_});
    // Advances flush immediately so temporal operators fire promptly
    // even when the feed batch is still filling.
    FlushShard(shard.get());
  }
  ++next_seq_;
}

size_t ParallelDetector::num_nodes() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->detector->num_nodes();
  return total;
}

size_t ParallelDetector::total_state() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->detector->total_state();
  return total;
}

std::map<std::string, size_t> ParallelDetector::StateByOp() const {
  std::map<std::string, size_t> merged;
  for (const auto& shard : shards_) {
    for (const auto& [op, state] : shard->detector->StateByOp()) {
      merged[op] += state;
    }
  }
  return merged;
}

uint64_t ParallelDetector::events_dropped() const {
  // Engine-level routing misses play the role of the sequential
  // engine's "no rule listens to this type" drops; shard-level drops
  // (possible only through route/graph divergence) are folded in for
  // completeness.
  uint64_t total = unrouted_dropped_;
  for (const auto& shard : shards_) {
    total += shard->detector->events_dropped();
  }
  return total;
}

uint64_t ParallelDetector::timers_fired() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->detector->timers_fired();
  return total;
}

std::vector<DetectorShardStats> ParallelDetector::PerShardStats() const {
  std::vector<DetectorShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.push_back(DetectorShardStats{
        shard->detector->events_fed(), shard->detector->events_dropped(),
        shard->detector->timers_fired(), shard->detector->StateByOp()});
  }
  return stats;
}

std::unique_ptr<DetectorEngine> MakeDetectorEngine(
    EventTypeRegistry* registry, const Detector::Options& options) {
  switch (options.engine) {
    case DetectorEngineKind::kSequential:
      return std::make_unique<Detector>(registry, options);
    case DetectorEngineKind::kShared:
      return std::make_unique<SharedDetector>(registry, options);
    case DetectorEngineKind::kParallel: {
      Detector::Options with_shards = options;
      if (with_shards.detector_threads == 0) with_shards.detector_threads = 1;
      return std::make_unique<ParallelDetector>(registry, with_shards);
    }
    case DetectorEngineKind::kAuto:
      break;
  }
  if (options.detector_threads == 0) {
    return std::make_unique<Detector>(registry, options);
  }
  return std::make_unique<ParallelDetector>(registry, options);
}

}  // namespace sentineld
