#include "snoop/reference_detector.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

ReferenceDetector::ReferenceDetector(EventTypeRegistry* registry,
                                     IntervalPolicy policy)
    : registry_(registry), policy_(policy) {
  CHECK(registry != nullptr);
}

bool ReferenceDetector::EligibleBefore(const EventPtr& a,
                                       const EventPtr& b) const {
  const CompositeTimestamp& b_anchor =
      policy_ == IntervalPolicy::kIntervalBased ? b->interval_start()
                                                : b->timestamp();
  return Before(a->timestamp(), b_anchor);
}

Result<std::vector<EventPtr>> ReferenceDetector::Evaluate(
    const ExprPtr& expr, std::span<const EventPtr> history) {
  RETURN_IF_ERROR(ValidateExpr(expr));

  if (expr->kind == OpKind::kPrimitive) {
    std::vector<EventPtr> out;
    for (const EventPtr& e : history) {
      if (e->type() == expr->primitive_type) out.push_back(e);
    }
    return out;
  }

  if (expr->kind == OpKind::kPeriodic ||
      expr->kind == OpKind::kPeriodicStar || expr->kind == OpKind::kPlus) {
    return Status::Unimplemented(
        "temporal operators need a clock; not part of the declarative "
        "oracle");
  }

  // Evaluate children.
  std::vector<std::vector<EventPtr>> kids;
  kids.reserve(expr->children.size());
  for (const ExprPtr& child : expr->children) {
    Result<std::vector<EventPtr>> r = Evaluate(child, history);
    if (!r.ok()) return r;
    kids.push_back(std::move(*r));
  }

  Result<EventTypeId> type = registry_->GetOrRegister(
      expr->ToString(*registry_), EventClass::kComposite);
  if (!type.ok()) return type.status();

  std::vector<EventPtr> out;
  switch (expr->kind) {
    case OpKind::kAnd:
      for (const EventPtr& a : kids[0]) {
        for (const EventPtr& b : kids[1]) {
          out.push_back(Event::MakeComposite(*type, {a, b}));
        }
      }
      break;
    case OpKind::kOr:
      for (const auto& side : kids) {
        for (const EventPtr& e : side) {
          out.push_back(Event::MakeComposite(*type, {e}));
        }
      }
      break;
    case OpKind::kSeq:
      for (const EventPtr& a : kids[0]) {
        for (const EventPtr& b : kids[1]) {
          if (EligibleBefore(a, b)) {
            out.push_back(Event::MakeComposite(*type, {a, b}));
          }
        }
      }
      break;
    case OpKind::kNot: {
      const auto& middles = kids[0];
      const auto& initiators = kids[1];
      const auto& terminators = kids[2];
      for (const EventPtr& e1 : initiators) {
        for (const EventPtr& e3 : terminators) {
          if (!EligibleBefore(e1, e3)) continue;
          const bool blocked = std::any_of(
              middles.begin(), middles.end(), [&](const EventPtr& m) {
                return EligibleBefore(e1, m) && EligibleBefore(m, e3);
              });
          if (!blocked) out.push_back(Event::MakeComposite(*type, {e1, e3}));
        }
      }
      break;
    }
    case OpKind::kAperiodic: {
      const auto& initiators = kids[0];
      const auto& middles = kids[1];
      const auto& terminators = kids[2];
      for (const EventPtr& e1 : initiators) {
        for (const EventPtr& e2 : middles) {
          if (!EligibleBefore(e1, e2)) continue;
          const bool closed = std::any_of(
              terminators.begin(), terminators.end(),
              [&](const EventPtr& e3) {
                return EligibleBefore(e1, e3) && EligibleBefore(e3, e2);
              });
          if (!closed) out.push_back(Event::MakeComposite(*type, {e1, e2}));
        }
      }
      break;
    }
    case OpKind::kAny: {
      // Every selection of one occurrence from each input of every
      // m-subset of distinct inputs.
      const int m = expr->any_threshold;
      std::vector<EventPtr> chosen;
      // Recursive enumeration of input subsets and selections.
      std::function<void(size_t, int)> recurse = [&](size_t from,
                                                     int needed) {
        if (needed == 0) {
          out.push_back(Event::MakeComposite(*type, chosen));
          return;
        }
        for (size_t input = from; input < kids.size(); ++input) {
          for (const EventPtr& candidate : kids[input]) {
            chosen.push_back(candidate);
            recurse(input + 1, needed - 1);
            chosen.pop_back();
          }
        }
      };
      recurse(0, m);
      break;
    }
    case OpKind::kAperiodicStar: {
      const auto& initiators = kids[0];
      const auto& middles = kids[1];
      const auto& terminators = kids[2];
      for (const EventPtr& e1 : initiators) {
        for (const EventPtr& e3 : terminators) {
          if (!EligibleBefore(e1, e3)) continue;
          std::vector<EventPtr> constituents{e1};
          for (const EventPtr& m : middles) {
            if (EligibleBefore(e1, m) && EligibleBefore(m, e3)) {
              constituents.push_back(m);
            }
          }
          constituents.push_back(e3);
          out.push_back(Event::MakeComposite(*type, std::move(constituents)));
        }
      }
      break;
    }
    default:
      LOG_FATAL << "unreachable operator in oracle";
  }
  return out;
}

std::string OccurrenceSignature(const EventPtr& event) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::vector<std::string> parts;
  parts.reserve(primitives.size());
  for (const EventPtr& p : primitives) {
    parts.push_back(
        StrCat("E", p->type(), "@", p->timestamp().ToString()));
  }
  std::sort(parts.begin(), parts.end());
  return StrCat(event->timestamp().ToString(), " <= [", Join(parts, ", "),
                "]");
}

std::vector<std::string> Signatures(std::span<const EventPtr> events) {
  std::vector<std::string> sigs;
  sigs.reserve(events.size());
  for (const EventPtr& e : events) sigs.push_back(OccurrenceSignature(e));
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

}  // namespace sentineld
