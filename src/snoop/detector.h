#ifndef SENTINELD_SNOOP_DETECTOR_H_
#define SENTINELD_SNOOP_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "event/registry.h"
#include "snoop/ast.h"
#include "snoop/context.h"
#include "snoop/detector_engine.h"
#include "snoop/node.h"
#include "timebase/config.h"
#include "timebase/timebase.h"
#include "util/status.h"

namespace sentineld {

class StateTape;
class Tracer;

/// Truncates a local-tick reading to its global tick under the config's
/// TRUNC policy (Def 4.3) — the same conversion LocalClock applies.
GlobalTicks TruncToGlobal(LocalTicks local, const TimebaseConfig& config);

/// The event-detection-graph engine: one Detector hosts the operator
/// graphs of any number of rules at one (logical) site, with structural
/// sharing of common sub-expressions (Sentinel's event graph).
///
/// Inputs arrive via Feed() as primitive occurrences; composite
/// occurrences propagate through operator nodes bottom-up and fire rule
/// callbacks at the roots. Temporal operators (P, P*, +) draw timer
/// callbacks from the host clock, which the owner advances via
/// AdvanceClockTo() — in the distributed runtime that is the site's
/// simulated local clock, in centralized use any monotone tick source.
///
/// Delivery contract (see Node): Feed order must be a linear extension of
/// the composite `<` on the fed occurrences for the kUnrestricted
/// semantics to coincide with the declarative Sec. 5.3 semantics.
///
/// Threading contract (docs/parallelism.md): a Detector is NOT
/// thread-safe. The timer heap (TimerEntry), the per-node buffered state
/// that StateByOp()/total_state() walk, and the rule table are all
/// mutated by Feed()/AdvanceClockTo()/AddRule() without any internal
/// synchronization, so every member function — mutators and accessors
/// alike — must be externally serialized. Ownership may move between
/// threads (ParallelDetector hands each shard's Detector to its worker),
/// but never with two threads inside the object at once. SENTINELD_CHECKED
/// builds enforce this: concurrent entry into the feed path from a second
/// thread CHECK-fails (see SerialGuard in detector.cc).
class Detector final : public DetectorEngine, public TimerService {
 public:
  struct Options {
    /// Parameter context applied to every operator node in this detector.
    ParamContext context = ParamContext::kUnrestricted;
    /// Site whose local clock stamps temporal (timer) occurrences.
    SiteId host_site = 0;
    /// Time base used to derive global ticks for temporal occurrences.
    TimebaseConfig timebase;
    /// Ordering backend the deployment runs on (docs/timebase.md): timer
    /// stamps are synthesized in this backend's representation via
    /// MakeTimerStamp so they order correctly against fed occurrences.
    TimebaseKind timebase_kind = TimebaseKind::kApproxGlobal;
    /// Share structurally identical sub-expressions between rules.
    bool share_subexpressions = true;
    /// Eligibility policy for order-sensitive operators (see
    /// snoop/context.h): the paper's point-based semantics, or the
    /// interval-based extension.
    IntervalPolicy interval_policy = IntervalPolicy::kPointBased;
    /// Normalize commutative operators (and/or/ANY operand order) before
    /// compiling, so commuted spellings of the same pattern share one
    /// graph node (see CanonicalizeExpr). Off by default: it reorders
    /// the constituents inside emitted occurrences, which some callers
    /// position-match on.
    bool canonicalize_expressions = false;
    /// Worker threads for MakeDetectorEngine (snoop/parallel_detector.h):
    /// under kAuto, 0 selects this sequential Detector, N >= 1 a
    /// ParallelDetector with N rule shards. The Detector itself ignores
    /// the field.
    uint32_t detector_threads = 0;
    /// Engine selection for MakeDetectorEngine. kAuto preserves the
    /// threads-based selection above; kShared builds the
    /// shared-subexpression DAG engine (snoop/shared_detector.h). The
    /// Detector itself ignores the field.
    DetectorEngineKind engine = DetectorEngineKind::kAuto;
  };

  using Callback = DetectorEngine::Callback;

  struct RuleInfo {
    std::string name;
    EventTypeId output_type;
    ExprPtr expr;
    Node* root = nullptr;
    size_t sink_token = 0;
    bool has_sink = false;
  };

  Detector(EventTypeRegistry* registry, Options options);
  ~Detector() override;

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Compiles `expr` into the graph and registers `callback` to fire on
  /// every detected occurrence. The rule's composite event type is
  /// registered under `name` and returned (so rules can feed other
  /// rules' outputs by subscribing to the type).
  Result<EventTypeId> AddRule(const std::string& name, const ExprPtr& expr,
                              Callback callback) override;

  /// Detaches the named rule's callback: the occurrence stream stops
  /// firing it. The operator nodes stay in the graph (they may be shared
  /// with other rules); their buffered state is retained. NotFound if no
  /// such rule.
  Status RemoveRule(const std::string& name) override;

  /// Delivers a primitive (or externally produced composite) occurrence.
  /// Occurrences of types no rule listens to are counted and dropped.
  void Feed(const EventPtr& event) override;

  /// Advances the host clock to `now` (local ticks), firing due timers in
  /// tick order. Must be monotone.
  void AdvanceClockTo(LocalTicks now) override;

  /// Processing is synchronous, so the barrier is a no-op here.
  void Drain() override {}

  /// TimerService:
  void ScheduleAt(Node* node, LocalTicks local_tick, int64_t payload) override;

  /// Attaches the execution tracer (obs/trace.h): every Feed journals a
  /// kFeed record. Call sites compile out unless -DSENTINELD_TRACE.
  void set_tracer(Tracer* tracer) override { tracer_ = tracer; }

  LocalTicks clock() const override { return clock_; }
  size_t num_nodes() const override { return nodes_.size(); }
  /// Total occurrences buffered across all operator nodes (retained
  /// detection state; see Node::StateSize).
  size_t total_state() const override;
  /// Retained state broken down by operator kind (Node::op_name) — the
  /// per-operator detector_state gauge of the metrics catalogue. Ordered
  /// so observers emit stable label sets.
  std::map<std::string, size_t> StateByOp() const override;
  uint64_t events_fed() const override { return events_fed_; }
  uint64_t events_dropped() const override { return events_dropped_; }
  uint64_t timers_fired() const override { return timers_fired_; }

  size_t num_shards() const override { return 1; }
  size_t ShardOfRule(const std::string& /*name*/) const override { return 0; }
  std::vector<DetectorShardStats> PerShardStats() const override {
    return {DetectorShardStats{events_fed_, events_dropped_, timers_fired_,
                               StateByOp()}};
  }

  const std::vector<RuleInfo>& rules() const { return rules_; }
  const EventTypeRegistry& registry() const { return *registry_; }

  bool checkpointable() const override { return true; }

  /// Checkpoints the mutable detection state — host clock, feed
  /// counters, every node's operator buffers (graph order, which is
  /// deterministic for a fixed rule sequence), and the pending timer
  /// heap (timers reference their node by graph index) — onto `tape`.
  /// The graph structure itself is not saved: LoadState requires a
  /// detector built from the same rules in the same order, and
  /// CHECK-fails on a node-count mismatch. See docs/recovery.md.
  void SaveState(StateTape& tape) const override;

  /// Restores state written by SaveState, overwriting current state.
  void LoadState(StateTape& tape) override;

 private:
  friend class SerialGuard;
  /// Builds (or reuses) the node implementing `expr`; registers the
  /// node's output event type by its canonical expression string.
  Result<Node*> BuildNode(const ExprPtr& expr);

  Result<EventTypeId> TickType();

  struct TimerEntry {
    LocalTicks tick;
    uint64_t seq;  // FIFO among equal ticks
    Node* node;
    int64_t payload;
    bool operator>(const TimerEntry& other) const {
      return tick != other.tick ? tick > other.tick : seq > other.seq;
    }
  };

  EventTypeRegistry* registry_;
  Options options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<EventTypeId, PrimitiveNode*> primitive_nodes_;
  std::unordered_map<std::string, Node*> shared_;  // expr string -> node
  std::vector<RuleInfo> rules_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  LocalTicks clock_ = 0;
  uint64_t timer_seq_ = 0;
  uint64_t events_fed_ = 0;
  uint64_t events_dropped_ = 0;
  uint64_t timers_fired_ = 0;
  EventTypeId tick_type_ = 0;
  bool tick_type_ready_ = false;
  Tracer* tracer_ = nullptr;
  /// SENTINELD_CHECKED single-writer sentinel (SerialGuard in
  /// detector.cc): the thread currently inside the feed path, or a
  /// default-constructed id when idle. Same-thread re-entry (a rule
  /// callback feeding a downstream rule) is legal; a second thread is a
  /// threading-contract violation and CHECK-fails.
  mutable std::atomic<std::thread::id> serial_owner_{};
  mutable std::atomic<int> serial_depth_{0};
};

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_DETECTOR_H_
