#include "snoop/parser.h"

#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace sentineld {
namespace {

enum class TokKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier text, number literal (with unit), or symbol
  size_t pos = 0;     // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_')) {
          ++i;
        }
        std::string ident(text_.substr(start, i - start));
        // "A*" / "P*" lex as one identifier so the operator names stay
        // one token.
        if ((ident == "A" || ident == "P") && i < text_.size() &&
            text_[i] == '*') {
          ident += '*';
          ++i;
        }
        tokens.push_back({TokKind::kIdent, std::move(ident), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i;
        while (i < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        // Attach a unit suffix ("ms", "s", "t", ...) if it follows
        // immediately.
        while (i < text_.size() &&
               std::isalpha(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        tokens.push_back(
            {TokKind::kNumber, std::string(text_.substr(start, i - start)),
             start});
        continue;
      }
      static constexpr std::string_view kSymbols = "();[],+";
      if (kSymbols.find(c) != std::string_view::npos) {
        tokens.push_back({TokKind::kSymbol, std::string(1, c), i});
        ++i;
        continue;
      }
      return Status::InvalidArgument(
          StrCat("unexpected character '", std::string(1, c),
                 "' at position ", i));
    }
    tokens.push_back({TokKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  std::string_view text_;
};

/// A copy of `expr` carrying the source span [begin, end); the children
/// are shared. Spans feed the static analyzer's diagnostics
/// (src/analysis/lint.h) and never affect detection semantics.
ExprPtr Spanned(ExprPtr expr, size_t begin, size_t end) {
  if (expr == nullptr || (expr->src_begin == begin && expr->src_end == end)) {
    return expr;
  }
  auto copy = std::make_shared<Expr>(*expr);
  copy->src_begin = begin;
  copy->src_end = end;
  return copy;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, EventTypeRegistry& registry,
         const ParserOptions& options)
      : tokens_(std::move(tokens)), registry_(registry), options_(options) {}

  Result<ExprPtr> Parse() {
    Result<ExprPtr> expr = ParseOr();
    if (!expr.ok()) return expr;
    if (Peek().kind != TokKind::kEnd) {
      return Err(StrCat("trailing input starting with '", Peek().text, "'"));
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() {
    const Token& token = tokens_[index_++];
    last_end_ = token.pos + token.text.size();
    return token;
  }

  bool ConsumeSymbol(std::string_view symbol) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeIdent(std::string_view ident) {
    if (Peek().kind == TokKind::kIdent && Peek().text == ident) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(std::string message) const {
    return Status::InvalidArgument(
        StrCat(message, " (at position ", Peek().pos, ")"));
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Err(StrCat("expected '", symbol, "', found '", Peek().text,
                        "'"));
    }
    return Status::Ok();
  }

  Result<ExprPtr> ParseOr() {
    const size_t begin = Peek().pos;
    Result<ExprPtr> left = ParseAnd();
    if (!left.ok()) return left;
    ExprPtr expr = *left;
    while (ConsumeIdent("or")) {
      Result<ExprPtr> right = ParseAnd();
      if (!right.ok()) return right;
      expr = Spanned(Or(expr, *right), begin, last_end_);
    }
    return expr;
  }

  Result<ExprPtr> ParseAnd() {
    const size_t begin = Peek().pos;
    Result<ExprPtr> left = ParseSeq();
    if (!left.ok()) return left;
    ExprPtr expr = *left;
    while (ConsumeIdent("and")) {
      Result<ExprPtr> right = ParseSeq();
      if (!right.ok()) return right;
      expr = Spanned(And(expr, *right), begin, last_end_);
    }
    return expr;
  }

  Result<ExprPtr> ParseSeq() {
    const size_t begin = Peek().pos;
    Result<ExprPtr> left = ParsePlus();
    if (!left.ok()) return left;
    ExprPtr expr = *left;
    while (ConsumeSymbol(";")) {
      Result<ExprPtr> right = ParsePlus();
      if (!right.ok()) return right;
      expr = Spanned(Seq(expr, *right), begin, last_end_);
    }
    return expr;
  }

  Result<ExprPtr> ParsePlus() {
    const size_t begin = Peek().pos;
    Result<ExprPtr> base = ParsePrimary();
    if (!base.ok()) return base;
    ExprPtr expr = *base;
    while (ConsumeSymbol("+")) {
      Result<int64_t> ticks = ParseDurationToken();
      if (!ticks.ok()) return ticks.status();
      expr = Spanned(Plus(expr, *ticks), begin, last_end_);
    }
    return expr;
  }

  Result<int64_t> ParseDurationToken() {
    if (Peek().kind != TokKind::kNumber) {
      return Status::InvalidArgument(
          StrCat("expected duration literal, found '", Peek().text,
                 "' (at position ", Peek().pos, ")"));
    }
    const Token tok = Advance();
    return ParseDuration(tok.text, options_.timebase);
  }

  /// Operator call with three expression arguments: name(e1, e2, e3).
  Result<ExprPtr> ParseTernaryTail(OpKind kind) {
    RETURN_IF_ERROR(ExpectSymbol("("));
    Result<ExprPtr> a = ParseOr();
    if (!a.ok()) return a;
    RETURN_IF_ERROR(ExpectSymbol(","));
    Result<ExprPtr> b = ParseOr();
    if (!b.ok()) return b;
    RETURN_IF_ERROR(ExpectSymbol(","));
    Result<ExprPtr> c = ParseOr();
    if (!c.ok()) return c;
    RETURN_IF_ERROR(ExpectSymbol(")"));
    return kind == OpKind::kAperiodic ? Aperiodic(*a, *b, *c)
                                      : AperiodicStar(*a, *b, *c);
  }

  /// P/P*: name(initiator, duration, terminator).
  Result<ExprPtr> ParsePeriodicTail(OpKind kind) {
    RETURN_IF_ERROR(ExpectSymbol("("));
    Result<ExprPtr> initiator = ParseOr();
    if (!initiator.ok()) return initiator;
    RETURN_IF_ERROR(ExpectSymbol(","));
    Result<int64_t> ticks = ParseDurationToken();
    if (!ticks.ok()) return ticks.status();
    RETURN_IF_ERROR(ExpectSymbol(","));
    Result<ExprPtr> terminator = ParseOr();
    if (!terminator.ok()) return terminator;
    RETURN_IF_ERROR(ExpectSymbol(")"));
    return kind == OpKind::kPeriodic
               ? Periodic(*initiator, *ticks, *terminator)
               : PeriodicStar(*initiator, *ticks, *terminator);
  }

  Result<ExprPtr> ParsePrimary() {
    if (ConsumeSymbol("(")) {
      Result<ExprPtr> inner = ParseOr();
      if (!inner.ok()) return inner;
      RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (Peek().kind != TokKind::kIdent) {
      return Err(StrCat("expected event name or operator, found '",
                        Peek().text, "'"));
    }
    const Token ident = Advance();
    const bool call = Peek().kind == TokKind::kSymbol && Peek().text == "(";

    if (call && ident.text == "not") {
      // not(E2)[E1, E3]
      RETURN_IF_ERROR(ExpectSymbol("("));
      Result<ExprPtr> middle = ParseOr();
      if (!middle.ok()) return middle;
      RETURN_IF_ERROR(ExpectSymbol(")"));
      RETURN_IF_ERROR(ExpectSymbol("["));
      Result<ExprPtr> initiator = ParseOr();
      if (!initiator.ok()) return initiator;
      RETURN_IF_ERROR(ExpectSymbol(","));
      Result<ExprPtr> terminator = ParseOr();
      if (!terminator.ok()) return terminator;
      RETURN_IF_ERROR(ExpectSymbol("]"));
      return Spanned(Not(*middle, *initiator, *terminator), ident.pos,
                     last_end_);
    }
    if (call && ident.text == "ANY") {
      // ANY(m, E1, E2, ..., En)
      RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().kind != TokKind::kNumber) {
        return Err("ANY expects a count as its first argument");
      }
      const std::string count_text = Advance().text;
      for (char c : count_text) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::InvalidArgument(
              StrCat("ANY count '", count_text, "' must be a plain integer"));
        }
      }
      const int threshold = std::stoi(count_text);
      std::vector<ExprPtr> children;
      while (ConsumeSymbol(",")) {
        Result<ExprPtr> child = ParseOr();
        if (!child.ok()) return child;
        children.push_back(*child);
      }
      RETURN_IF_ERROR(ExpectSymbol(")"));
      if (children.size() < 2) {
        return Err("ANY needs at least two constituent events");
      }
      if (threshold < 1 || threshold > static_cast<int>(children.size())) {
        return Err("ANY count out of range");
      }
      return Spanned(Any(threshold, std::move(children)), ident.pos,
                     last_end_);
    }
    if (call && (ident.text == "A" || ident.text == "A*")) {
      Result<ExprPtr> expr = ParseTernaryTail(
          ident.text == "A" ? OpKind::kAperiodic : OpKind::kAperiodicStar);
      if (!expr.ok()) return expr;
      return Spanned(*expr, ident.pos, last_end_);
    }
    if (call && (ident.text == "P" || ident.text == "P*")) {
      Result<ExprPtr> expr = ParsePeriodicTail(
          ident.text == "P" ? OpKind::kPeriodic : OpKind::kPeriodicStar);
      if (!expr.ok()) return expr;
      return Spanned(*expr, ident.pos, last_end_);
    }
    if (ident.text == "A*" || ident.text == "P*") {
      return Err(StrCat("'", ident.text, "' must be followed by '('"));
    }

    // A plain identifier: a primitive event type. Existing types of any
    // class are accepted; auto_register creates missing ones as explicit
    // events.
    Result<EventTypeId> id = registry_.Lookup(ident.text);
    if (!id.ok() && options_.auto_register) {
      id = registry_.Register(ident.text, EventClass::kExplicit);
    }
    if (!id.ok()) return id.status();
    return Spanned(Prim(*id), ident.pos, last_end_);
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  size_t last_end_ = 0;  ///< end offset of the last consumed token
  EventTypeRegistry& registry_;
  const ParserOptions& options_;
};

}  // namespace

Result<int64_t> ParseDuration(std::string_view literal,
                              const TimebaseConfig& timebase) {
  size_t i = 0;
  while (i < literal.size() &&
         std::isdigit(static_cast<unsigned char>(literal[i]))) {
    ++i;
  }
  if (i == 0) {
    return Status::InvalidArgument(
        StrCat("duration '", std::string(literal), "' has no digits"));
  }
  const int64_t value = std::stoll(std::string(literal.substr(0, i)));
  const std::string_view unit = literal.substr(i);
  int64_t ns = 0;
  if (unit == "t") {
    if (value <= 0) return Status::InvalidArgument("period must be positive");
    return value;  // raw local ticks
  } else if (unit == "ns") {
    ns = value;
  } else if (unit == "us") {
    ns = value * 1'000;
  } else if (unit == "ms") {
    ns = value * 1'000'000;
  } else if (unit == "s" || unit.empty()) {
    ns = value * 1'000'000'000;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown duration unit '", std::string(unit), "'"));
  }
  if (ns <= 0) return Status::InvalidArgument("period must be positive");
  if (ns % timebase.local_granularity_ns != 0) {
    return Status::InvalidArgument(
        StrCat("duration ", ns, "ns is not a multiple of the local clock "
               "granularity ", timebase.local_granularity_ns, "ns"));
  }
  return ns / timebase.local_granularity_ns;
}

Result<ExprPtr> ParseExpr(std::string_view text, EventTypeRegistry& registry,
                          const ParserOptions& options) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens), registry, options);
  Result<ExprPtr> expr = parser.Parse();
  if (!expr.ok()) return expr;
  RETURN_IF_ERROR(ValidateExpr(*expr));
  return expr;
}

}  // namespace sentineld
