#ifndef SENTINELD_SNOOP_PARSER_H_
#define SENTINELD_SNOOP_PARSER_H_

#include <string>
#include <string_view>

#include "event/registry.h"
#include "snoop/ast.h"
#include "timebase/config.h"
#include "util/status.h"

namespace sentineld {

/// Options for the event-expression parser.
struct ParserOptions {
  /// When true, identifiers not present in the registry are registered as
  /// kExplicit primitive event types; when false they are a NotFound
  /// error.
  bool auto_register = false;

  /// Used to convert duration literals ("500ms", "2s") into local clock
  /// ticks; durations must be positive multiples of the local
  /// granularity. The suffix "t" gives raw ticks.
  TimebaseConfig timebase;
};

/// Parses the Sentinel event-expression language into an Expr tree.
///
/// Grammar (precedence loosest to tightest: or < and < ';' < '+'):
///
///   expr      := or_expr
///   or_expr   := and_expr  ( "or"  and_expr )*
///   and_expr  := seq_expr  ( "and" seq_expr )*
///   seq_expr  := plus_expr ( ";"   plus_expr )*
///   plus_expr := primary   ( "+" duration )*
///   primary   := IDENT
///              | "(" expr ")"
///              | "not" "(" expr ")" "[" expr "," expr "]"
///              | "A"  "(" expr "," expr "," expr ")"
///              | "A*" "(" expr "," expr "," expr ")"
///              | "P"  "(" expr "," duration "," expr ")"
///              | "P*" "(" expr "," duration "," expr ")"
///              | "ANY" "(" NUMBER ("," expr)+ ")"
///   duration  := NUMBER ( "ns" | "us" | "ms" | "s" | "t" )
///
/// "not(...)[...]" mirrors the paper's ¬(E2)[E1, E3]. Identifiers are
/// [A-Za-z_][A-Za-z0-9_]*; the operator names ("A", "P", "not", ...) act
/// as operators only when followed by "(", so events may be named "A".
///
/// Errors carry a position-annotated message.
Result<ExprPtr> ParseExpr(std::string_view text, EventTypeRegistry& registry,
                          const ParserOptions& options = {});

/// Converts a duration literal (e.g. "250ms") to local ticks under
/// `timebase`. Exposed for tests and the examples.
Result<int64_t> ParseDuration(std::string_view literal,
                              const TimebaseConfig& timebase);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_PARSER_H_
