#ifndef SENTINELD_SNOOP_CANONICAL_H_
#define SENTINELD_SNOOP_CANONICAL_H_

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

#include "event/registry.h"
#include "snoop/ast.h"

namespace sentineld {

/// Canonical expression hashing, shared between the static
/// whole-catalogue analyzer (analysis/catalogue.h) and the runtime
/// shared-subexpression engine (snoop/shared_detector.h). Both sides
/// MUST produce bit-identical hashes: the analyzer's --report-json
/// export carries them (16-hex `hash` fields, pinned by golden tests),
/// and SharedDetector keys its checkpoint tape entries on them — a
/// formula drift would silently break report diffing and restore.
namespace canonical {

/// splitmix64 finalizer: the bit mixer under every catalogue hash.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t Combine(uint64_t h, uint64_t v) {
  return Mix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// FNV-1a over the primitive's NAME: hashes are comparable across rules
/// parsed against different (per-rule) registries.
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Operators whose operand order is semantically irrelevant; their
/// children hash (and intern) order-independently.
inline bool Commutative(OpKind kind) {
  return kind == OpKind::kAnd || kind == OpKind::kOr || kind == OpKind::kAny;
}

/// One hash formula for the free CanonicalHash AND both interning
/// tables: mixing (kind, period, threshold, name, child hashes — the
/// child hashes sorted for commutative operators, so operand order
/// never matters).
inline uint64_t HashNode(OpKind kind, int64_t period, int threshold,
                         uint64_t name_hash,
                         std::vector<uint64_t> child_hashes) {
  uint64_t h = Mix(static_cast<uint64_t>(kind) + 0x517cc1b727220a95ULL);
  h = Combine(h, static_cast<uint64_t>(period));
  h = Combine(h, static_cast<uint64_t>(threshold));
  h = Combine(h, name_hash);
  if (Commutative(kind)) {
    std::sort(child_hashes.begin(), child_hashes.end());
  }
  for (const uint64_t child : child_hashes) h = Combine(h, child);
  return h;
}

}  // namespace canonical

/// 64-bit canonical hash of an expression: equal for canonically equal
/// trees (commutative operands are hashed order-independently, so
/// "(b and a)" hashes like "(a and b)"), and — modulo 64-bit collisions,
/// which tests/analysis_fuzz_test.cc accounts for — different for
/// canonically different ones. Primitives hash by NAME, so hashes are
/// comparable across rules parsed against different registries.
uint64_t CanonicalHash(const ExprPtr& expr, const EventTypeRegistry& registry);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_CANONICAL_H_
