#include "snoop/detector.h"

#include "obs/trace.h"
#include "snoop/state_tape.h"
#include "util/checked.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

/// Checked-build enforcement of the threading contract documented on
/// Detector: the feed path (Feed / AdvanceClockTo) admits one thread at
/// a time. Re-entry from the same thread — a rule callback feeding
/// another rule — is legal and tracked by depth; entry from a second
/// thread while the first is still inside is the latent race this guard
/// exists to surface, and CHECK-fails instead of corrupting the timer
/// heap or node state.
class SerialGuard {
 public:
  explicit SerialGuard([[maybe_unused]] const Detector* detector) {
#if SENTINELD_CHECKED_ENABLED
    detector_ = detector;
    const std::thread::id me = std::this_thread::get_id();
    std::thread::id idle{};
    if (!detector_->serial_owner_.compare_exchange_strong(idle, me)) {
      CHECK(idle == me);  // concurrent feed from a second thread
    }
    detector_->serial_depth_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  ~SerialGuard() {
#if SENTINELD_CHECKED_ENABLED
    if (detector_->serial_depth_.fetch_sub(1, std::memory_order_relaxed) ==
        1) {
      detector_->serial_owner_.store(std::thread::id{});
    }
#endif
  }

  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;

#if SENTINELD_CHECKED_ENABLED
 private:
  const Detector* detector_;
#endif
};

Detector::Detector(EventTypeRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  CHECK(registry != nullptr);
  CHECK_OK(options.timebase.Validate());
}

Detector::~Detector() = default;

Result<EventTypeId> Detector::TickType() {
  if (!tick_type_ready_) {
    Result<EventTypeId> id = registry_->GetOrRegister(
        StrCat("__tick_site", options_.host_site), EventClass::kTemporal);
    if (!id.ok()) return id;
    tick_type_ = *id;
    tick_type_ready_ = true;
  }
  return tick_type_;
}

Result<Node*> Detector::BuildNode(const ExprPtr& expr) {
  if (expr->kind == OpKind::kPrimitive) {
    auto it = primitive_nodes_.find(expr->primitive_type);
    if (it != primitive_nodes_.end()) return it->second;
    Result<EventTypeRegistry::TypeInfo> info =
        registry_->Info(expr->primitive_type);
    if (!info.ok()) return info.status();
    auto node = std::make_unique<PrimitiveNode>(expr->primitive_type);
    PrimitiveNode* raw = node.get();
    nodes_.push_back(std::move(node));
    primitive_nodes_.emplace(expr->primitive_type, raw);
    return raw;
  }

  const std::string key = expr->ToString(*registry_);
  if (options_.share_subexpressions) {
    auto it = shared_.find(key);
    if (it != shared_.end()) return it->second;
  }

  // Children first (inputs wire into this node).
  std::vector<Node*> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& child : expr->children) {
    Result<Node*> built = BuildNode(child);
    if (!built.ok()) return built;
    children.push_back(*built);
  }

  Result<EventTypeId> output =
      registry_->GetOrRegister(key, EventClass::kComposite);
  if (!output.ok()) return output.status();

  std::unique_ptr<Node> node;
  switch (expr->kind) {
    case OpKind::kPrimitive:
      LOG_FATAL << "unreachable";
      break;
    case OpKind::kAnd:
      node = std::make_unique<AndNode>(*output, options_.context);
      break;
    case OpKind::kOr:
      node = std::make_unique<OrNode>(*output, options_.context);
      break;
    case OpKind::kSeq:
      node = std::make_unique<SeqNode>(*output, options_.context);
      break;
    case OpKind::kNot:
      node = std::make_unique<NotNode>(*output, options_.context);
      break;
    case OpKind::kAperiodic:
      node = std::make_unique<AperiodicNode>(*output, options_.context);
      break;
    case OpKind::kAperiodicStar:
      node = std::make_unique<AperiodicStarNode>(*output, options_.context);
      break;
    case OpKind::kPeriodic:
    case OpKind::kPeriodicStar: {
      Result<EventTypeId> tick = TickType();
      if (!tick.ok()) return tick.status();
      if (expr->kind == OpKind::kPeriodic) {
        node = std::make_unique<PeriodicNode>(
            *output, options_.context, expr->period_ticks, *tick, this);
      } else {
        node = std::make_unique<PeriodicStarNode>(
            *output, options_.context, expr->period_ticks, *tick, this);
      }
      break;
    }
    case OpKind::kPlus: {
      Result<EventTypeId> tick = TickType();
      if (!tick.ok()) return tick.status();
      node = std::make_unique<PlusNode>(*output, options_.context,
                                        expr->period_ticks, *tick, this);
      break;
    }
    case OpKind::kAny:
      node = std::make_unique<AnyNode>(*output, options_.context,
                                       expr->any_threshold,
                                       expr->children.size());
      break;
  }

  Node* raw = node.get();
  raw->set_interval_policy(options_.interval_policy);
  nodes_.push_back(std::move(node));
  for (size_t i = 0; i < children.size(); ++i) {
    children[i]->AddParent(raw, i);
  }
  if (options_.share_subexpressions) shared_.emplace(key, raw);
  return raw;
}

Result<EventTypeId> Detector::AddRule(const std::string& name,
                                      const ExprPtr& expr,
                                      Callback callback) {
  RETURN_IF_ERROR(ValidateExpr(expr));
  const ExprPtr compiled = options_.canonicalize_expressions
                               ? CanonicalizeExpr(expr, *registry_)
                               : expr;
  Result<Node*> root = BuildNode(compiled);
  if (!root.ok()) return root.status();
  RuleInfo info{name, (*root)->output_type(), compiled, *root, 0, false};
  if (callback) {
    info.sink_token = (*root)->AddSink(std::move(callback));
    info.has_sink = true;
  }
  // Register the rule's name as an alias type so other rules / external
  // consumers can reference the output; the node keeps emitting under its
  // canonical expression type.
  Result<EventTypeId> alias =
      registry_->GetOrRegister(name, EventClass::kComposite);
  if (!alias.ok()) return alias.status();
  rules_.push_back(std::move(info));
  return (*root)->output_type();
}

Status Detector::RemoveRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->name != name) continue;
    if (it->has_sink) it->root->RemoveSink(it->sink_token);
    rules_.erase(it);
    return Status::Ok();
  }
  return Status::NotFound(StrCat("rule '", name, "'"));
}

size_t Detector::total_state() const {
  size_t total = 0;
  for (const auto& node : nodes_) total += node->StateSize();
  return total;
}

std::map<std::string, size_t> Detector::StateByOp() const {
  std::map<std::string, size_t> by_op;
  for (const auto& node : nodes_) by_op[node->op_name()] += node->StateSize();
  return by_op;
}

void Detector::Feed(const EventPtr& event) {
  CHECK(event != nullptr);
  SerialGuard guard(this);
  ++events_fed_;
  SENTINELD_TRACE_EVENT(tracer_, TracePhase::kFeed, options_.host_site,
                        event);
  auto it = primitive_nodes_.find(event->type());
  if (it == primitive_nodes_.end()) {
    ++events_dropped_;
    return;
  }
  it->second->Accept(event);
}

void Detector::ScheduleAt(Node* node, LocalTicks local_tick,
                          int64_t payload) {
  timers_.push(TimerEntry{local_tick, timer_seq_++, node, payload});
}

void Detector::AdvanceClockTo(LocalTicks now) {
  SerialGuard guard(this);
  CHECK_GE(now, clock_);
  clock_ = now;
  while (!timers_.empty() && timers_.top().tick <= now) {
    const TimerEntry entry = timers_.top();
    timers_.pop();
    ++timers_fired_;
    const PrimitiveTimestamp stamp = MakeTimerStamp(
        options_.timebase_kind, options_.host_site, entry.tick,
        options_.timebase);
    entry.node->OnTimer(stamp, entry.payload);
  }
}

void Detector::SaveState(StateTape& tape) const {
  tape.PutInt(clock_);
  tape.PutInt(static_cast<int64_t>(timer_seq_));
  tape.PutInt(static_cast<int64_t>(events_fed_));
  tape.PutInt(static_cast<int64_t>(events_dropped_));
  tape.PutInt(static_cast<int64_t>(timers_fired_));
  tape.PutInt(static_cast<int64_t>(nodes_.size()));
  for (const auto& node : nodes_) node->SaveState(tape);
  // Pending timers, referencing their owner by graph index (stable for
  // an identically built detector). Enumerated in firing order by
  // draining a copy of the heap.
  std::unordered_map<const Node*, int64_t> node_index;
  node_index.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    node_index[nodes_[i].get()] = static_cast<int64_t>(i);
  }
  auto timers = timers_;
  tape.PutInt(static_cast<int64_t>(timers.size()));
  while (!timers.empty()) {
    const TimerEntry& entry = timers.top();
    const auto it = node_index.find(entry.node);
    CHECK(it != node_index.end());
    tape.PutInt(it->second);
    tape.PutInt(entry.tick);
    tape.PutInt(static_cast<int64_t>(entry.seq));
    tape.PutInt(entry.payload);
    timers.pop();
  }
}

void Detector::LoadState(StateTape& tape) {
  clock_ = tape.TakeInt();
  timer_seq_ = static_cast<uint64_t>(tape.TakeInt());
  events_fed_ = static_cast<uint64_t>(tape.TakeInt());
  events_dropped_ = static_cast<uint64_t>(tape.TakeInt());
  timers_fired_ = static_cast<uint64_t>(tape.TakeInt());
  // LoadState requires a detector built from the same rules, in the
  // same order — the node count is the cheap structural fingerprint.
  const int64_t num_nodes = tape.TakeInt();
  CHECK_EQ(static_cast<size_t>(num_nodes), nodes_.size());
  for (const auto& node : nodes_) node->LoadState(tape);
  timers_ = {};
  const int64_t num_timers = tape.TakeInt();
  for (int64_t i = 0; i < num_timers; ++i) {
    const int64_t node_index = tape.TakeInt();
    const LocalTicks tick = tape.TakeInt();
    const auto seq = static_cast<uint64_t>(tape.TakeInt());
    const int64_t payload = tape.TakeInt();
    CHECK_GE(node_index, 0);
    CHECK_LT(static_cast<size_t>(node_index), nodes_.size());
    timers_.push(
        TimerEntry{tick, seq, nodes_[static_cast<size_t>(node_index)].get(),
                   payload});
  }
}

}  // namespace sentineld
