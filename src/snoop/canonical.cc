#include "snoop/canonical.h"

#include <utility>

namespace sentineld {

uint64_t CanonicalHash(const ExprPtr& expr,
                       const EventTypeRegistry& registry) {
  std::vector<uint64_t> child_hashes;
  child_hashes.reserve(expr->children.size());
  for (const ExprPtr& child : expr->children) {
    child_hashes.push_back(CanonicalHash(child, registry));
  }
  const uint64_t name_hash =
      expr->kind == OpKind::kPrimitive
          ? canonical::HashString(registry.NameOf(expr->primitive_type))
          : 0;
  return canonical::HashNode(expr->kind, expr->period_ticks,
                             expr->any_threshold, name_hash,
                             std::move(child_hashes));
}

}  // namespace sentineld
