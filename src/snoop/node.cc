#include "snoop/node.h"

#include <algorithm>

#include "snoop/state_tape.h"
#include "util/logging.h"

namespace sentineld {

const char* ParamContextToString(ParamContext context) {
  switch (context) {
    case ParamContext::kUnrestricted:
      return "unrestricted";
    case ParamContext::kRecent:
      return "recent";
    case ParamContext::kChronicle:
      return "chronicle";
    case ParamContext::kContinuous:
      return "continuous";
    case ParamContext::kCumulative:
      return "cumulative";
  }
  return "?";
}

const char* IntervalPolicyToString(IntervalPolicy policy) {
  switch (policy) {
    case IntervalPolicy::kPointBased:
      return "point-based";
    case IntervalPolicy::kIntervalBased:
      return "interval-based";
  }
  return "?";
}

void Node::OnTimer(const PrimitiveTimestamp& stamp, int64_t payload) {
  (void)stamp;
  (void)payload;
}

void Node::AddParent(Node* parent, size_t input_index) {
  CHECK(parent != nullptr);
  CHECK_LT(input_index, parent->num_inputs());
  parents_.emplace_back(parent, input_index);
}

size_t Node::AddSink(std::function<void(const EventPtr&)> sink) {
  sinks_.push_back(std::move(sink));
  return sinks_.size() - 1;
}

void Node::RemoveSink(size_t token) {
  if (token < sinks_.size()) sinks_[token] = nullptr;
}

void Node::Emit(const EventPtr& event) {
  ++emit_count_;
  for (auto& [parent, index] : parents_) parent->OnInput(index, event);
  for (auto& sink : sinks_) {
    if (sink) sink(event);
  }
}

void Node::EmitComposite(std::span<const EventPtr> constituents) {
  Emit(Event::MakeComposite(output_type(), constituents));
}

void Node::EmitComposite(std::initializer_list<EventPtr> constituents) {
  EmitComposite(
      std::span<const EventPtr>(constituents.begin(), constituents.size()));
}

void Node::EmitComposite(std::vector<EventPtr> constituents) {
  Emit(Event::MakeComposite(output_type(), std::move(constituents)));
}

bool Node::EligibleBefore(const EventPtr& a, const EventPtr& b) const {
  const CompositeTimestamp& b_anchor =
      interval_policy_ == IntervalPolicy::kIntervalBased
          ? b->interval_start()
          : b->timestamp();
  return Before(a->timestamp(), b_anchor);
}

bool Node::StampEligibleBefore(const CompositeTimestamp& a_end,
                               const EventPtr& b) const {
  const CompositeTimestamp& b_anchor =
      interval_policy_ == IntervalPolicy::kIntervalBased
          ? b->interval_start()
          : b->timestamp();
  return Before(a_end, b_anchor);
}

// ---------------------------------------------------------------- leaf --

void PrimitiveNode::OnInput(size_t index, const EventPtr& event) {
  (void)index;
  Accept(event);
}

// ----------------------------------------------------------------- OR --

void OrNode::OnInput(size_t index, const EventPtr& event) {
  (void)index;
  // Disjunction re-types the occurrence; timestamp and provenance pass
  // through as the single constituent.
  EmitComposite({event});
}

// ---------------------------------------------------------------- AND --

void AndNode::EmitPair(const EventPtr& left, const EventPtr& right) {
  EmitComposite({left, right});
}

void AndNode::OnInput(size_t index, const EventPtr& event) {
  CHECK_LT(index, 2u);
  const size_t other = 1 - index;
  auto emit_with = [&](const EventPtr& o) {
    index == 0 ? EmitPair(event, o) : EmitPair(o, event);
  };
  switch (context_) {
    case ParamContext::kUnrestricted:
      for (const EventPtr& o : buffer_[other]) emit_with(o);
      buffer_[index].push_back(event);
      break;
    case ParamContext::kRecent:
      // Only the most recent occurrence per side survives; detection does
      // not consume it.
      buffer_[index].assign(1, event);
      if (!buffer_[other].empty()) emit_with(buffer_[other].back());
      break;
    case ParamContext::kChronicle:
      if (!buffer_[other].empty()) {
        emit_with(buffer_[other].front());
        buffer_[other].erase(buffer_[other].begin());
      } else {
        buffer_[index].push_back(event);
      }
      break;
    case ParamContext::kContinuous:
      if (!buffer_[other].empty()) {
        for (const EventPtr& o : buffer_[other]) emit_with(o);
        buffer_[other].clear();
      } else {
        buffer_[index].push_back(event);
      }
      break;
    case ParamContext::kCumulative:
      if (!buffer_[other].empty()) {
        // One occurrence carrying everything accumulated on the other
        // side plus the arrival, left-side constituents first.
        std::vector<EventPtr> constituents;
        if (index == 0) {
          constituents.push_back(event);
          constituents.insert(constituents.end(), buffer_[other].begin(),
                              buffer_[other].end());
        } else {
          constituents.assign(buffer_[other].begin(), buffer_[other].end());
          constituents.push_back(event);
        }
        buffer_[other].clear();
        EmitComposite(std::move(constituents));
      } else {
        buffer_[index].push_back(event);
      }
      break;
  }
}

// ---------------------------------------------------------------- ANY --

void AnyNode::EmitCombinations(const EventPtr& base, size_t arrival_index,
                               size_t from_input, int needed,
                               std::vector<EventPtr>& chosen) {
  if (needed == 0) {
    std::vector<EventPtr> constituents(chosen);
    constituents.push_back(base);
    EmitComposite(std::move(constituents));
    return;
  }
  for (size_t input = from_input; input < buffers_.size(); ++input) {
    if (input == arrival_index) continue;
    for (const EventPtr& candidate : buffers_[input]) {
      chosen.push_back(candidate);
      EmitCombinations(base, arrival_index, input + 1, needed - 1, chosen);
      chosen.pop_back();
    }
  }
}

void AnyNode::OnInput(size_t index, const EventPtr& event) {
  CHECK_LT(index, buffers_.size());
  const int needed = threshold_ - 1;

  // Inputs with at least one buffered occurrence, excluding the arrival's.
  auto distinct_nonempty = [&] {
    std::vector<size_t> inputs;
    for (size_t i = 0; i < buffers_.size(); ++i) {
      if (i != index && !buffers_[i].empty()) inputs.push_back(i);
    }
    return inputs;
  };

  switch (context_) {
    case ParamContext::kUnrestricted: {
      std::vector<EventPtr> chosen;
      EmitCombinations(event, index, 0, needed, chosen);
      buffers_[index].push_back(event);
      break;
    }
    case ParamContext::kRecent: {
      buffers_[index].assign(1, event);
      auto inputs = distinct_nonempty();
      if (static_cast<int>(inputs.size()) < needed) break;
      // Pick the m-1 inputs whose retained occurrence has the largest
      // anchor tick (deterministic "most recent" under the tie-breaks).
      std::sort(inputs.begin(), inputs.end(), [&](size_t a, size_t b) {
        return AnchorTick(buffers_[a].back()->timestamp()) >
               AnchorTick(buffers_[b].back()->timestamp());
      });
      std::vector<EventPtr> constituents;
      for (int i = 0; i < needed; ++i) {
        constituents.push_back(buffers_[inputs[i]].back());
      }
      constituents.push_back(event);
      EmitComposite(std::move(constituents));
      break;
    }
    case ParamContext::kChronicle: {
      const auto inputs = distinct_nonempty();
      if (static_cast<int>(inputs.size()) < needed) {
        buffers_[index].push_back(event);
        break;
      }
      std::vector<EventPtr> constituents;
      for (int i = 0; i < needed; ++i) {
        constituents.push_back(buffers_[inputs[i]].front());
        buffers_[inputs[i]].erase(buffers_[inputs[i]].begin());
      }
      constituents.push_back(event);
      EmitComposite(std::move(constituents));
      break;
    }
    case ParamContext::kContinuous: {
      const auto inputs = distinct_nonempty();
      if (static_cast<int>(inputs.size()) < needed) {
        buffers_[index].push_back(event);
        break;
      }
      std::vector<EventPtr> chosen;
      EmitCombinations(event, index, 0, needed, chosen);
      for (size_t input : inputs) buffers_[input].clear();
      break;
    }
    case ParamContext::kCumulative: {
      const auto inputs = distinct_nonempty();
      if (static_cast<int>(inputs.size()) < needed) {
        buffers_[index].push_back(event);
        break;
      }
      std::vector<EventPtr> constituents;
      for (size_t input : inputs) {
        constituents.insert(constituents.end(), buffers_[input].begin(),
                            buffers_[input].end());
        buffers_[input].clear();
      }
      constituents.push_back(event);
      EmitComposite(std::move(constituents));
      break;
    }
  }
}

size_t AnyNode::StateSize() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer.size();
  return total;
}

// ---------------------------------------------------------------- SEQ --

void SeqNode::OnInput(size_t index, const EventPtr& event) {
  CHECK_LT(index, 2u);
  if (index == 0) {
    if (context_ == ParamContext::kRecent) {
      // Newest initiator supersedes (ties among concurrent stamps break
      // by arrival, which under the linear-extension delivery contract
      // never moves backwards in `<`).
      initiators_.assign(1, event);
    } else {
      initiators_.push_back(event);
    }
    return;
  }

  auto eligible = [&](const EventPtr& init) {
    return EligibleBefore(init, event);
  };
  switch (context_) {
    case ParamContext::kUnrestricted:
      for (const EventPtr& init : initiators_) {
        if (eligible(init)) EmitComposite({init, event});
      }
      break;
    case ParamContext::kRecent:
      if (!initiators_.empty() && eligible(initiators_.back())) {
        EmitComposite({initiators_.back(), event});
      }
      break;
    case ParamContext::kChronicle: {
      auto it = std::find_if(initiators_.begin(), initiators_.end(),
                             eligible);
      if (it != initiators_.end()) {
        EmitComposite({*it, event});
        initiators_.erase(it);
      }
      break;
    }
    case ParamContext::kContinuous: {
      std::vector<EventPtr> kept;
      for (const EventPtr& init : initiators_) {
        if (eligible(init)) {
          EmitComposite({init, event});
        } else {
          kept.push_back(init);
        }
      }
      initiators_ = std::move(kept);
      break;
    }
    case ParamContext::kCumulative: {
      std::vector<EventPtr> constituents;
      std::vector<EventPtr> kept;
      for (const EventPtr& init : initiators_) {
        (eligible(init) ? constituents : kept).push_back(init);
      }
      if (!constituents.empty()) {
        constituents.push_back(event);
        initiators_ = std::move(kept);
        EmitComposite(std::move(constituents));
      }
      break;
    }
  }
}

// ---------------------------------------------------------------- NOT --

bool NotNode::MiddleInside(const EventPtr& e1, const EventPtr& e3) const {
  for (const EventPtr& middle : middles_) {
    if (EligibleBefore(e1, middle) && EligibleBefore(middle, e3)) {
      return true;
    }
  }
  return false;
}

void NotNode::PruneMiddles() {
  // The unrestricted context never consumes initiators, so every middle
  // stays potentially relevant; pruning only pays off (and is only
  // triggered by consumption/replacement) in the other contexts.
  std::erase_if(middles_, [this](const EventPtr& middle) {
    for (const EventPtr& init : initiators_) {
      if (Before(init->timestamp(), middle->timestamp())) return false;
    }
    return true;
  });
}

void NotNode::OnInput(size_t index, const EventPtr& event) {
  switch (index) {
    case 0:  // E2, the forbidden middle
      middles_.push_back(event);
      return;
    case 1:  // E1, the initiator
      if (context_ == ParamContext::kRecent) {
        initiators_.assign(1, event);
        PruneMiddles();
      } else {
        initiators_.push_back(event);
      }
      return;
    case 2:
      break;  // E3, the terminator: evaluate below
    default:
      LOG_FATAL << "NotNode: bad input index " << index;
  }

  auto eligible = [&](const EventPtr& init) {
    return EligibleBefore(init, event);
  };
  auto clean = [&](const EventPtr& init) {
    return !MiddleInside(init, event);
  };
  switch (context_) {
    case ParamContext::kUnrestricted:
      for (const EventPtr& init : initiators_) {
        if (eligible(init) && clean(init)) EmitComposite({init, event});
      }
      break;
    case ParamContext::kRecent:
      if (!initiators_.empty() && eligible(initiators_.back()) &&
          clean(initiators_.back())) {
        EmitComposite({initiators_.back(), event});
      }
      break;
    case ParamContext::kChronicle: {
      // The terminator consumes the oldest eligible initiator whether or
      // not the non-occurrence condition holds (the attempt is used up).
      auto it = std::find_if(initiators_.begin(), initiators_.end(),
                             eligible);
      if (it != initiators_.end()) {
        if (clean(*it)) EmitComposite({*it, event});
        initiators_.erase(it);
        PruneMiddles();
      }
      break;
    }
    case ParamContext::kContinuous: {
      std::vector<EventPtr> kept;
      for (const EventPtr& init : initiators_) {
        if (eligible(init)) {
          if (clean(init)) EmitComposite({init, event});
        } else {
          kept.push_back(init);
        }
      }
      initiators_ = std::move(kept);
      PruneMiddles();
      break;
    }
    case ParamContext::kCumulative: {
      std::vector<EventPtr> constituents;
      std::vector<EventPtr> kept;
      for (const EventPtr& init : initiators_) {
        if (!eligible(init)) {
          kept.push_back(init);
        } else if (clean(init)) {
          constituents.push_back(init);
        }
      }
      initiators_ = std::move(kept);
      if (!constituents.empty()) {
        constituents.push_back(event);
        EmitComposite(std::move(constituents));
      }
      PruneMiddles();
      break;
    }
  }
}

// ------------------------------------------------------------ A (mid) --

void AperiodicNode::RecordTerminator(Window& w,
                                     const CompositeTimestamp& t3) {
  // Keep only `<`-minimal terminators: t3 blocks {t2 : t3 < t2}, so a
  // terminator after an already-recorded one blocks a subset and is
  // redundant; conversely an earlier t3 obsoletes recorded later ones.
  for (const CompositeTimestamp& existing : w.terminators) {
    if (Before(existing, t3) || existing == t3) return;
  }
  std::erase_if(w.terminators, [&](const CompositeTimestamp& existing) {
    return Before(t3, existing);
  });
  w.terminators.push_back(t3);
}

bool AperiodicNode::WindowOpenFor(const Window& w,
                                  const EventPtr& e2) const {
  if (!EligibleBefore(w.initiator, e2)) return false;
  for (const CompositeTimestamp& t3 : w.terminators) {
    if (StampEligibleBefore(t3, e2)) return false;  // closed before e2
  }
  return true;
}

void AperiodicNode::OnInput(size_t index, const EventPtr& event) {
  switch (index) {
    case 0:  // initiator
      if (context_ == ParamContext::kRecent) {
        windows_.assign(1, Window{event, {}});
      } else {
        windows_.push_back(Window{event, {}});
      }
      return;
    case 1: {  // middle: the signalling event
      switch (context_) {
        case ParamContext::kUnrestricted:
        case ParamContext::kContinuous:
        case ParamContext::kCumulative:  // A has no accumulation; the
                                         // cumulative variant is A*.
          for (const Window& w : windows_) {
            if (WindowOpenFor(w, event)) {
              EmitComposite({w.initiator, event});
            }
          }
          break;
        case ParamContext::kRecent:
          if (!windows_.empty() && WindowOpenFor(windows_.back(), event)) {
            EmitComposite({windows_.back().initiator, event});
          }
          break;
        case ParamContext::kChronicle: {
          auto it = std::find_if(
              windows_.begin(), windows_.end(),
              [&](const Window& w) { return WindowOpenFor(w, event); });
          if (it != windows_.end()) {
            EmitComposite({it->initiator, event});
          }
          break;
        }
      }
      return;
    }
    case 2:
      break;  // terminator, handled below
    default:
      LOG_FATAL << "AperiodicNode: bad input index " << index;
  }

  const CompositeTimestamp& t3 = event->timestamp();
  auto terminated = [&](const Window& w) {
    return EligibleBefore(w.initiator, event);
  };
  switch (context_) {
    case ParamContext::kUnrestricted:
    case ParamContext::kRecent:
      // Record the terminator; the window stays so that E2 occurrences
      // concurrent with t3 (delivered later) are still classified
      // correctly against the open-interval condition.
      for (Window& w : windows_) {
        if (terminated(w)) RecordTerminator(w, t3);
      }
      break;
    case ParamContext::kChronicle: {
      auto it = std::find_if(windows_.begin(), windows_.end(), terminated);
      if (it != windows_.end()) windows_.erase(it);
      break;
    }
    case ParamContext::kContinuous:
    case ParamContext::kCumulative:
      windows_.erase(
          std::remove_if(windows_.begin(), windows_.end(), terminated),
          windows_.end());
      break;
  }
}

size_t AperiodicNode::StateSize() const {
  size_t total = 0;
  for (const Window& w : windows_) total += 1 + w.terminators.size();
  return total;
}

// ------------------------------------------------------- A* (cumulate) --

size_t AperiodicStarNode::StateSize() const {
  size_t total = 0;
  for (const Window& w : windows_) total += 1 + w.middles.size();
  return total;
}

void AperiodicStarNode::OnInput(size_t index, const EventPtr& event) {
  switch (index) {
    case 0:
      if (context_ == ParamContext::kRecent) {
        windows_.assign(1, Window{event, {}});
      } else {
        windows_.push_back(Window{event, {}});
      }
      return;
    case 1: {
      for (Window& w : windows_) {
        if (EligibleBefore(w.initiator, event)) w.middles.push_back(event);
      }
      return;
    }
    case 2:
      break;
    default:
      LOG_FATAL << "AperiodicStarNode: bad input index " << index;
  }

  std::vector<Window> kept;
  for (Window& w : windows_) {
    if (!EligibleBefore(w.initiator, event)) {
      kept.push_back(std::move(w));
      continue;
    }
    std::vector<EventPtr> constituents{w.initiator};
    for (const EventPtr& middle : w.middles) {
      if (EligibleBefore(middle, event)) constituents.push_back(middle);
    }
    constituents.push_back(event);
    EmitComposite(std::move(constituents));
    if (context_ == ParamContext::kUnrestricted) {
      // Unconsumed: the window keeps accumulating and may emit again at a
      // later terminator with a superset of middles.
      kept.push_back(std::move(w));
    }
  }
  windows_ = std::move(kept);
}

// ------------------------------------------------------------- P / P* --

PeriodicNode::Window* PeriodicNode::FindWindow(int64_t id) {
  for (Window& w : windows_) {
    if (w.id == id) return &w;
  }
  return nullptr;
}

void PeriodicNode::OpenWindow(const EventPtr& initiator) {
  Window w;
  w.id = next_window_id_++;
  w.initiator = initiator;
  windows_.push_back(std::move(w));
  timers_->ScheduleAt(this, AnchorTick(initiator->timestamp()) + period_ticks_,
                      windows_.back().id);
}

void PeriodicNode::CloseWindows(const EventPtr& terminator) {
  std::vector<Window> kept;
  for (Window& w : windows_) {
    if (!EligibleBefore(w.initiator, terminator)) {
      kept.push_back(std::move(w));
      continue;
    }
    if (cumulative()) {
      std::vector<EventPtr> constituents{w.initiator};
      constituents.insert(constituents.end(), w.ticks.begin(),
                          w.ticks.end());
      constituents.push_back(terminator);
      EmitComposite(std::move(constituents));
    }
    // Dropped: pending timers for this window id are invalidated lazily
    // in OnTimer.
  }
  windows_ = std::move(kept);
}

void PeriodicNode::OnInput(size_t index, const EventPtr& event) {
  CHECK_LT(index, 2u);
  if (index == 0) {
    switch (context_) {
      case ParamContext::kRecent:
        windows_.clear();
        OpenWindow(event);
        break;
      case ParamContext::kChronicle:
        // First initiator wins until its window is terminated.
        if (windows_.empty()) OpenWindow(event);
        break;
      case ParamContext::kUnrestricted:
      case ParamContext::kContinuous:
      case ParamContext::kCumulative:
        OpenWindow(event);
        break;
    }
    return;
  }
  CloseWindows(event);
}

void PeriodicNode::OnTimer(const PrimitiveTimestamp& stamp,
                           int64_t payload) {
  Window* w = FindWindow(payload);
  if (w == nullptr) return;  // window closed; stale timer
  const EventPtr tick = Event::MakePrimitive(tick_type_, stamp);
  if (cumulative()) {
    w->ticks.push_back(tick);
  } else {
    EmitComposite({w->initiator, tick});
  }
  timers_->ScheduleAt(this, stamp.local + period_ticks_, payload);
}

void PeriodicStarNode::OnInput(size_t index, const EventPtr& event) {
  PeriodicNode::OnInput(index, event);
}

// --------------------------------------------------------------- PLUS --

void PlusNode::OnInput(size_t index, const EventPtr& event) {
  CHECK_EQ(index, 0u);
  if (context_ == ParamContext::kRecent) {
    // Pending earlier schedules are superseded.
    for (EventPtr& pending : pending_) pending.reset();
  }
  const int64_t payload = static_cast<int64_t>(pending_.size());
  pending_.push_back(event);
  timers_->ScheduleAt(this, AnchorTick(event->timestamp()) + period_ticks_,
                      payload);
}

void PlusNode::OnTimer(const PrimitiveTimestamp& stamp, int64_t payload) {
  CHECK_GE(payload, 0);
  CHECK_LT(static_cast<size_t>(payload), pending_.size());
  const EventPtr initiator = pending_[payload];
  if (initiator == nullptr) return;  // superseded under kRecent
  pending_[payload].reset();
  EmitComposite({initiator, Event::MakePrimitive(tick_type_, stamp)});
}

// --- Checkpoint state (docs/recovery.md). Every override writes its
// buffers in declaration order, after the base emit count; LoadState
// mirrors the exact same sequence. Helper pair for the ubiquitous
// vector<EventPtr> shape:

namespace {

void SaveEvents(StateTape& tape, const std::vector<EventPtr>& events) {
  tape.PutInt(static_cast<int64_t>(events.size()));
  for (const EventPtr& e : events) tape.PutEvent(e);
}

std::vector<EventPtr> LoadEvents(StateTape& tape) {
  const int64_t n = tape.TakeInt();
  CHECK_GE(n, 0);
  std::vector<EventPtr> events;
  events.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) events.push_back(tape.TakeEvent());
  return events;
}

}  // namespace

void Node::SaveState(StateTape& tape) const {
  tape.PutInt(static_cast<int64_t>(emit_count_));
}

void Node::LoadState(StateTape& tape) {
  emit_count_ = static_cast<uint64_t>(tape.TakeInt());
}

void AndNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  SaveEvents(tape, buffer_[0]);
  SaveEvents(tape, buffer_[1]);
}

void AndNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  buffer_[0] = LoadEvents(tape);
  buffer_[1] = LoadEvents(tape);
}

void AnyNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  for (const std::vector<EventPtr>& buffer : buffers_) {
    SaveEvents(tape, buffer);
  }
}

void AnyNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  for (std::vector<EventPtr>& buffer : buffers_) buffer = LoadEvents(tape);
}

void SeqNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  SaveEvents(tape, initiators_);
}

void SeqNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  initiators_ = LoadEvents(tape);
}

void NotNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  SaveEvents(tape, initiators_);
  SaveEvents(tape, middles_);
}

void NotNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  initiators_ = LoadEvents(tape);
  middles_ = LoadEvents(tape);
}

void AperiodicNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  tape.PutInt(static_cast<int64_t>(windows_.size()));
  for (const Window& w : windows_) {
    tape.PutEvent(w.initiator);
    tape.PutInt(static_cast<int64_t>(w.terminators.size()));
    for (const CompositeTimestamp& t : w.terminators) tape.PutStamp(t);
  }
}

void AperiodicNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  windows_.clear();
  const int64_t n = tape.TakeInt();
  for (int64_t i = 0; i < n; ++i) {
    Window w;
    w.initiator = tape.TakeEvent();
    const int64_t terms = tape.TakeInt();
    for (int64_t j = 0; j < terms; ++j) {
      w.terminators.push_back(tape.TakeStamp());
    }
    windows_.push_back(std::move(w));
  }
}

void AperiodicStarNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  tape.PutInt(static_cast<int64_t>(windows_.size()));
  for (const Window& w : windows_) {
    tape.PutEvent(w.initiator);
    SaveEvents(tape, w.middles);
  }
}

void AperiodicStarNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  windows_.clear();
  const int64_t n = tape.TakeInt();
  for (int64_t i = 0; i < n; ++i) {
    Window w;
    w.initiator = tape.TakeEvent();
    w.middles = LoadEvents(tape);
    windows_.push_back(std::move(w));
  }
}

void PeriodicNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  tape.PutInt(next_window_id_);
  tape.PutInt(static_cast<int64_t>(windows_.size()));
  for (const Window& w : windows_) {
    tape.PutInt(w.id);
    tape.PutEvent(w.initiator);
    tape.PutInt(w.closed ? 1 : 0);
    SaveEvents(tape, w.ticks);
  }
}

void PeriodicNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  next_window_id_ = tape.TakeInt();
  windows_.clear();
  const int64_t n = tape.TakeInt();
  for (int64_t i = 0; i < n; ++i) {
    Window w;
    w.id = tape.TakeInt();
    w.initiator = tape.TakeEvent();
    w.closed = tape.TakeInt() != 0;
    w.ticks = LoadEvents(tape);
    windows_.push_back(std::move(w));
  }
}

void PlusNode::SaveState(StateTape& tape) const {
  Node::SaveState(tape);
  // pending_ slots are positional (timer payloads index into it), so
  // nulls — consumed or superseded initiators — are saved as nulls.
  SaveEvents(tape, pending_);
}

void PlusNode::LoadState(StateTape& tape) {
  Node::LoadState(tape);
  pending_ = LoadEvents(tape);
}

LocalTicks AnchorTick(const CompositeTimestamp& t) {
  CHECK(!t.empty());
  LocalTicks anchor = t.stamps().front().local;
  for (const PrimitiveTimestamp& p : t.stamps()) {
    anchor = std::max(anchor, p.local);
  }
  return anchor;
}

}  // namespace sentineld
