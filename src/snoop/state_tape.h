#ifndef SENTINELD_SNOOP_STATE_TAPE_H_
#define SENTINELD_SNOOP_STATE_TAPE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "event/event.h"
#include "timestamp/composite_timestamp.h"
#include "util/logging.h"

namespace sentineld {

/// Typed record stream used to checkpoint and restore detection state
/// (docs/recovery.md). Writers Put* items in a fixed order; readers
/// Take* them back in exactly that order — a kind mismatch is a
/// programming error (the save and load sides disagree about the state
/// layout) and CHECK-fails rather than silently mis-restoring.
///
/// Events are held as live EventPtrs: an in-process restore preserves
/// occurrence identity (Event::uid()), which the Sequencer's dedup set
/// and the runtimes' uid-keyed bookkeeping rely on. The byte form
/// (dist/recovery.h SerializeTape) re-creates events through the codec
/// and therefore mints fresh uids — it exists for durability, size
/// accounting, and the round-trip property tests.
class StateTape {
 public:
  enum class Kind : uint8_t {
    kInt = 0,
    kEvent = 1,
    kNullEvent = 2,
    kStamp = 3,
    kString = 4,
  };

  struct Entry {
    Kind kind = Kind::kInt;
    int64_t integer = 0;
    EventPtr event;
    CompositeTimestamp stamp;
    std::string text;
  };

  void PutInt(int64_t v) {
    Entry e;
    e.integer = v;
    entries_.push_back(std::move(e));
  }

  /// Null events are legal (PlusNode keeps consumed slots as nulls so
  /// timer payload indices stay valid) and round-trip as nulls.
  void PutEvent(const EventPtr& event) {
    Entry e;
    e.kind = event == nullptr ? Kind::kNullEvent : Kind::kEvent;
    e.event = event;
    entries_.push_back(std::move(e));
  }

  void PutStamp(const CompositeTimestamp& stamp) {
    Entry e;
    e.kind = Kind::kStamp;
    e.stamp = stamp;
    entries_.push_back(std::move(e));
  }

  void PutString(std::string text) {
    Entry e;
    e.kind = Kind::kString;
    e.text = std::move(text);
    entries_.push_back(std::move(e));
  }

  int64_t TakeInt() { return Next(Kind::kInt).integer; }

  EventPtr TakeEvent() {
    CHECK_LT(cursor_, entries_.size());
    const Entry& e = entries_[cursor_];
    CHECK(e.kind == Kind::kEvent || e.kind == Kind::kNullEvent);
    ++cursor_;
    return e.event;
  }

  CompositeTimestamp TakeStamp() { return Next(Kind::kStamp).stamp; }
  std::string TakeString() { return Next(Kind::kString).text; }

  /// Resets the read cursor; a tape can be consumed repeatedly (each
  /// restore re-reads the same checkpoint).
  void Rewind() { cursor_ = 0; }

  bool exhausted() const { return cursor_ == entries_.size(); }
  size_t size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  const Entry& Next(Kind kind) {
    CHECK_LT(cursor_, entries_.size());
    const Entry& e = entries_[cursor_];
    CHECK(e.kind == kind);
    ++cursor_;
    return e;
  }

  std::vector<Entry> entries_;
  size_t cursor_ = 0;
};

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_STATE_TAPE_H_
