#ifndef SENTINELD_SNOOP_SHARED_DETECTOR_H_
#define SENTINELD_SNOOP_SHARED_DETECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "event/registry.h"
#include "snoop/ast.h"
#include "snoop/detector.h"
#include "snoop/detector_engine.h"
#include "snoop/node.h"
#include "timebase/config.h"
#include "util/status.h"

namespace sentineld {

class StateTape;
class Tracer;

/// The catalogue-scale detection engine (docs/catalogue-scale.md): all
/// rule ASTs merge into ONE detection DAG, hash-consed with the same
/// canonical formula the static catalogue analyzer uses
/// (snoop/canonical.h), so a subexpression appearing in 10k rules is
/// detected once and its occurrences fan out to every parent. The
/// resulting node count equals the analyzer's `predicted_dag_nodes` for
/// the same rule set — the static prediction, realized at runtime.
///
/// Dispatch is indexed: Feed() routes an occurrence through an
/// event-type -> leaf map, so an injected primitive touches only the
/// nodes that can consume it — O(matching rules), not O(rules). The
/// per-event cost is therefore ~flat in catalogue size for
/// sparse-matching workloads (bench/bench_detection.cpp's rule-count
/// sweep pins this).
///
/// What it shares that the sequential Detector does not: the Detector
/// interns per-expression-STRING within itself, so commuted spellings
/// ("b and a" vs "a and b") build distinct nodes and every intern probe
/// pays an O(subtree) ToString. Here every rule is canonicalized
/// (CanonicalizeExpr — the `canonicalize_expressions` option is always
/// implied) and interning is id-based over canonical hashes: commutative
/// operands merge order-independently and probes cost O(1) per subtree.
/// Merging commuted spellings is semantics-preserving because AND/OR/ANY
/// treat their inputs symmetrically; as under the sequential engine's
/// canonicalize option, emitted occurrences list constituents in
/// canonical rather than as-spelled order. The differential contract
/// (tests/shared_detector_test.cc, the diff fuzzer): detections are
/// IDENTICAL to a sequential Detector with canonicalize_expressions on,
/// and equal as per-rule multisets to a plain sequential Detector
/// (within-trigger emission order may differ for commuted spellings).
///
/// Threading contract: identical to Detector — every member must be
/// externally serialized (DistributedRuntime and SentinelService drive
/// it single-threaded).
class SharedDetector final : public DetectorEngine, public TimerService {
 public:
  /// Reuses Detector::Options verbatim; `detector_threads` is ignored
  /// and subexpressions always share (that is the engine).
  SharedDetector(EventTypeRegistry* registry, Detector::Options options);
  ~SharedDetector() override;

  SharedDetector(const SharedDetector&) = delete;
  SharedDetector& operator=(const SharedDetector&) = delete;

  Result<EventTypeId> AddRule(const std::string& name, const ExprPtr& expr,
                              Callback callback) override;
  Status RemoveRule(const std::string& name) override;
  void Feed(const EventPtr& event) override;
  void AdvanceClockTo(LocalTicks now) override;
  void Drain() override {}
  void set_tracer(Tracer* tracer) override { tracer_ = tracer; }

  /// TimerService:
  void ScheduleAt(Node* node, LocalTicks local_tick, int64_t payload) override;

  LocalTicks clock() const override { return clock_; }
  /// DAG nodes, primitives included — comparable to the catalogue
  /// analyzer's predicted_dag_nodes.
  size_t num_nodes() const override { return dag_.size(); }
  size_t total_state() const override;
  std::map<std::string, size_t> StateByOp() const override;
  uint64_t events_fed() const override { return events_fed_; }
  uint64_t events_dropped() const override { return events_dropped_; }
  uint64_t timers_fired() const override { return timers_fired_; }

  size_t num_shards() const override { return 1; }
  size_t ShardOfRule(const std::string& /*name*/) const override { return 0; }
  std::vector<DetectorShardStats> PerShardStats() const override {
    return {DetectorShardStats{events_fed_, events_dropped_, timers_fired_,
                               StateByOp()}};
  }

  DetectorDagStats DagStats() const override;

  bool checkpointable() const override { return true; }

  /// Checkpoints the mutable detection state. Unlike Detector's
  /// graph-index tape, every node (and every pending timer's owner) is
  /// keyed by its canonical hash, so LoadState resolves entries through
  /// the intern table: restore works into any SharedDetector holding
  /// the same rule SET, even when the rules were added in a different
  /// order. CHECK-fails on a node-set mismatch. See docs/recovery.md.
  void SaveState(StateTape& tape) const override;

  /// Restores state written by SaveState, overwriting current state.
  void LoadState(StateTape& tape) override;

 private:
  /// One interned DAG node: the canonical identity (what InternNode
  /// probes compare) plus the live operator node.
  struct DagNode {
    uint64_t hash = 0;
    OpKind kind = OpKind::kPrimitive;
    int64_t period = 0;
    int threshold = 0;
    EventTypeId primitive_type = 0;  ///< primitives only
    /// Interned child ids, wiring order (commutative: sorted by id, so
    /// equal multisets merge).
    std::vector<uint32_t> children;
    std::unique_ptr<Node> node;
  };

  struct RuleInfo {
    std::string name;
    EventTypeId output_type;
    ExprPtr expr;
    uint32_t root = 0;
    size_t sink_token = 0;
    bool has_sink = false;
  };

  struct TimerEntry {
    LocalTicks tick;
    uint64_t seq;  // FIFO among equal ticks
    Node* node;
    int64_t payload;
    bool operator>(const TimerEntry& other) const {
      return tick != other.tick ? tick > other.tick : seq > other.seq;
    }
  };

  /// Interns `expr` bottom-up into the DAG, constructing operator nodes
  /// only on intern misses; returns the root's unique id.
  Result<uint32_t> BuildDag(const ExprPtr& expr);

  Result<EventTypeId> TickType();

  /// Position of `id` inside its hash's intern bucket (collision
  /// disambiguation on the checkpoint tape; almost always 0).
  int64_t BucketPos(uint32_t id) const;
  /// Resolves a checkpoint tape (hash, bucket position) key back to a
  /// DAG id; CHECK-fails when this detector holds no such node.
  uint32_t ResolveNode(uint64_t hash, int64_t bucket_pos) const;

  EventTypeRegistry* registry_;
  Detector::Options options_;
  std::vector<DagNode> dag_;  ///< by unique id, children before parents
  /// Canonical hash -> ids (collision bucket, exact structural probe).
  std::unordered_map<uint64_t, std::vector<uint32_t>> intern_;
  /// The event-name dispatch index: primitive type -> its leaf's id.
  std::unordered_map<EventTypeId, uint32_t> dispatch_;
  /// Live node -> id, for timer checkpointing.
  std::unordered_map<const Node*, uint32_t> node_ids_;
  std::vector<RuleInfo> rules_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  LocalTicks clock_ = 0;
  uint64_t timer_seq_ = 0;
  uint64_t events_fed_ = 0;
  uint64_t events_dropped_ = 0;
  uint64_t timers_fired_ = 0;
  uint64_t sharing_hits_ = 0;
  uint64_t dispatch_probes_ = 0;
  uint64_t dispatch_touched_ = 0;
  EventTypeId tick_type_ = 0;
  bool tick_type_ready_ = false;
  Tracer* tracer_ = nullptr;
};

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_SHARED_DETECTOR_H_
