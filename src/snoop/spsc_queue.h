#ifndef SENTINELD_SNOOP_SPSC_QUEUE_H_
#define SENTINELD_SNOOP_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace sentineld {

/// Bounded single-producer/single-consumer ring buffer: the per-shard
/// command queue of ParallelDetector. Exactly one thread may call
/// TryPush and exactly one thread may call TryPop. The release store on
/// each index publishes the slot's contents to the other side (acquire
/// load), so elements need no locking of their own.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` must be a power of two (index masking).
  explicit SpscQueue(size_t capacity) : slots_(capacity), mask_(capacity - 1) {
    CHECK(capacity > 0 && (capacity & (capacity - 1)) == 0);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. False when full (the producer spins or backs off).
  bool TryPush(T item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool TryPop(T& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy by nature (either side may move on immediately after); safe
  /// for wake/park heuristics on both sides.
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  const uint64_t mask_;
  /// Producer and consumer indices on separate cache lines so the two
  /// sides don't false-share.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_SPSC_QUEUE_H_
