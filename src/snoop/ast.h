#ifndef SENTINELD_SNOOP_AST_H_
#define SENTINELD_SNOOP_AST_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "event/registry.h"
#include "util/status.h"

namespace sentineld {

/// The Snoop composite-event operators (Sentinel's event specification
/// language; semantics per Chakravarthy et al. VLDB'94, lifted to
/// distributed composite timestamps by the paper's Sec. 5.3).
enum class OpKind {
  kPrimitive,      ///< leaf: a registered primitive event type
  kAnd,            ///< E1 ∧ E2 — both occur, any order
  kOr,             ///< E1 ∇ E2 — either occurs
  kSeq,            ///< E1 ; E2 — E2 strictly after E1 (composite <)
  kNot,            ///< ¬(E2)[E1,E3] — no E2 between E1 and E3
  kAperiodic,      ///< A(E1,E2,E3) — each E2 inside an open E1..E3 window
  kAperiodicStar,  ///< A*(E1,E2,E3) — all E2s inside the window, at E3
  kPeriodic,       ///< P(E1,t,E3) — a tick every t after E1 until E3
  kPeriodicStar,   ///< P*(E1,t,E3) — all ticks, delivered at E3
  kPlus,           ///< E1 + t — one tick, t after E1
  kAny,            ///< ANY(m, E1..En) — any m of n distinct events occur
};

const char* OpKindToString(OpKind kind);

struct Expr;
/// Expressions are immutable and shared (sub-expressions may appear in
/// several rules).
using ExprPtr = std::shared_ptr<const Expr>;

/// A node of the composite-event expression tree.
///
/// Children by operator:
///   kPrimitive                  — none (primitive_type set)
///   kAnd / kOr / kSeq           — {left, right}
///   kNot                        — {E2, E1, E3}  (the paper's ¬(E2)[E1,E3])
///   kAperiodic / kAperiodicStar — {E1, E2, E3}
///   kPeriodic / kPeriodicStar   — {E1, E3} with period_ticks set
///   kPlus                       — {E1} with period_ticks set
///   kAny                        — {E1..En}, n >= 2, with any_threshold m
///
/// Periods are expressed in *local ticks of the detector's host site*
/// (the paper's temporal events are site-local clock events).
struct Expr {
  OpKind kind = OpKind::kPrimitive;
  EventTypeId primitive_type = 0;
  std::vector<ExprPtr> children;
  int64_t period_ticks = 0;
  int any_threshold = 0;  ///< m of kAny

  /// Source span [src_begin, src_end) in the text the node was parsed
  /// from (byte offsets); both zero for programmatically built trees.
  /// Carried for diagnostics (src/analysis); never affects semantics.
  size_t src_begin = 0;
  size_t src_end = 0;

  bool has_span() const { return src_end > src_begin; }

  /// Canonical textual form, e.g. "(A ; (B and C))"; used as the
  /// registered name of the node's output event type.
  std::string ToString(const EventTypeRegistry& registry) const;
};

/// Builders (each validates arity; periods must be positive).
ExprPtr Prim(EventTypeId type);
ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Seq(ExprPtr first, ExprPtr second);
ExprPtr Not(ExprPtr middle, ExprPtr initiator, ExprPtr terminator);
ExprPtr Aperiodic(ExprPtr initiator, ExprPtr middle, ExprPtr terminator);
ExprPtr AperiodicStar(ExprPtr initiator, ExprPtr middle, ExprPtr terminator);
ExprPtr Periodic(ExprPtr initiator, int64_t period_ticks,
                 ExprPtr terminator);
ExprPtr PeriodicStar(ExprPtr initiator, int64_t period_ticks,
                     ExprPtr terminator);
ExprPtr Plus(ExprPtr initiator, int64_t period_ticks);
/// ANY(m, children): detected when occurrences of any m of the n distinct
/// constituent events exist (Snoop's ANY operator; 1 <= m <= n, n >= 2).
ExprPtr Any(int threshold, std::vector<ExprPtr> children);

/// Structural checks: arities, positive periods, primitive leaves only at
/// kPrimitive nodes. (Type-existence is checked against the registry at
/// graph-build time.)
Status ValidateExpr(const ExprPtr& expr);

/// Collects the distinct primitive event types referenced by `expr`.
std::vector<EventTypeId> CollectPrimitiveTypes(const ExprPtr& expr);

/// Number of nodes in the expression tree.
size_t ExprSize(const ExprPtr& expr);

/// The subexpression reached from `root` by following `path` (a sequence
/// of child indices); NotFound when the path leaves the tree. An empty
/// path is `root` itself.
Result<ExprPtr> SubexprAt(const ExprPtr& root, std::span<const size_t> path);

/// A semantics-preserving normal form: commutative operators (and, or,
/// ANY) get their operands sorted by canonical string, recursively, so
/// that e.g. "(B and A)" and "(A and B)" compile to the same graph node
/// (sub-expression sharing keys on the canonical string). Detection
/// semantics are unchanged in every context — the binary operators treat
/// their sides symmetrically — only the constituent order inside emitted
/// occurrences can differ.
ExprPtr CanonicalizeExpr(const ExprPtr& expr,
                         const EventTypeRegistry& registry);

/// A copy of `root` with the subexpression at `path` replaced by
/// `replacement`; branches off the path are shared, not copied. Used by
/// the hierarchical runtime to substitute a remotely-detected
/// sub-composite with its (primitive-like) event type.
Result<ExprPtr> ReplaceSubexpr(const ExprPtr& root,
                               std::span<const size_t> path,
                               ExprPtr replacement);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_AST_H_
