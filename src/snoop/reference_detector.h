#ifndef SENTINELD_SNOOP_REFERENCE_DETECTOR_H_
#define SENTINELD_SNOOP_REFERENCE_DETECTOR_H_

#include <span>
#include <vector>

#include "event/event.h"
#include "event/registry.h"
#include "snoop/ast.h"
#include "snoop/context.h"
#include "util/status.h"

namespace sentineld {

/// Oracle: evaluates the *declarative* Sec. 5.3 semantics of a composite
/// event expression over a complete history of primitive occurrences,
/// with no streaming state, no contexts, and no concern for delivery
/// order. Used to validate the streaming Detector (kUnrestricted context)
/// by exhaustive comparison, and by tests that need ground truth.
///
/// The operator semantics implemented (composite `<` and open intervals
/// throughout):
///   E1 ∧ E2 : every pair (e1, e2)                     -> {e1, e2}
///   E1 ∇ E2 : every occurrence of either              -> {e}
///   E1 ; E2 : every pair with t1 < t2                 -> {e1, e2}
///   ¬(E2)[E1,E3] : pairs t1 < t3, no m with t1<tm<t3  -> {e1, e3}
///   A(E1,E2,E3)  : pairs t1 < t2, no t3 with t1<t3<t2 -> {e1, e2}
///   A*(E1,E2,E3) : pairs t1 < t3, mids in (t1, t3)    -> {e1, mids…, e3}
///
/// Temporal operators (P, P*, +) require a clock and are not part of the
/// declarative oracle; evaluating them returns Unimplemented.
class ReferenceDetector {
 public:
  explicit ReferenceDetector(
      EventTypeRegistry* registry,
      IntervalPolicy policy = IntervalPolicy::kPointBased);

  /// All occurrences of `expr` over `history`, in no particular order.
  /// Output event types are registered under the same canonical
  /// expression strings the Detector uses, so type ids agree when the
  /// registry is shared.
  Result<std::vector<EventPtr>> Evaluate(const ExprPtr& expr,
                                         std::span<const EventPtr> history);

 private:
  /// Operator-eligibility order under the configured policy (matches
  /// Node::EligibleBefore).
  bool EligibleBefore(const EventPtr& a, const EventPtr& b) const;

  EventTypeRegistry* registry_;
  IntervalPolicy policy_;
};

/// Order-insensitive signature of a detected occurrence: its composite
/// timestamp plus the multiset of constituent primitive stamps. Two
/// detectors agree iff the sorted signature lists of their outputs match.
std::string OccurrenceSignature(const EventPtr& event);

/// Sorted signatures of a batch of occurrences.
std::vector<std::string> Signatures(std::span<const EventPtr> events);

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_REFERENCE_DETECTOR_H_
