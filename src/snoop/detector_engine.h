#ifndef SENTINELD_SNOOP_DETECTOR_ENGINE_H_
#define SENTINELD_SNOOP_DETECTOR_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "event/event.h"
#include "snoop/ast.h"
#include "timebase/config.h"
#include "util/status.h"

namespace sentineld {

class StateTape;
class Tracer;

/// Which detection engine MakeDetectorEngine builds
/// (docs/parallelism.md, docs/catalogue-scale.md):
///   kAuto       — legacy threads-based selection: detector_threads == 0
///                 builds the sequential Detector, N >= 1 a
///                 ParallelDetector with N shards.
///   kSequential — the per-rule sequential Detector, regardless of
///                 detector_threads.
///   kParallel   — a ParallelDetector (detector_threads shards, min 1).
///   kShared     — the SharedDetector: all rule ASTs merged into one
///                 hash-consed DAG with an event-name dispatch index,
///                 built for 100k-rule catalogues.
enum class DetectorEngineKind { kAuto, kSequential, kParallel, kShared };

/// One shard's share of the engine counters (docs/parallelism.md). The
/// sequential engine reports itself as a single shard; the parallel
/// engine reports one entry per worker.
struct DetectorShardStats {
  uint64_t events_fed = 0;
  uint64_t events_dropped = 0;
  uint64_t timers_fired = 0;
  std::map<std::string, size_t> state_by_op;
};

/// Shared-DAG counters (docs/catalogue-scale.md): only the shared
/// engine reports them (`valid` stays false elsewhere). They back the
/// dag_* metrics of the observability catalogue.
struct DetectorDagStats {
  bool valid = false;
  /// Nodes in the merged detection DAG — equals the catalogue
  /// analyzer's `predicted_dag_nodes` for the same rule set.
  size_t dag_nodes = 0;
  /// Subtrees that interned onto an existing DAG node at AddRule time
  /// (the work sharing saved: total subtrees == dag_nodes + hits).
  uint64_t sharing_hits = 0;
  /// Dispatch-index lookups that found a consumer (== fed occurrences
  /// of types some rule listens to).
  uint64_t dispatch_probes = 0;
  /// Parent edges those lookups fanned out to, summed.
  uint64_t dispatch_touched = 0;

  /// Mean parent edges touched per dispatched occurrence — the
  /// O(matching rules) number the dispatch index bounds.
  double mean_dispatch_fanout() const {
    return dispatch_probes == 0
               ? 0.0
               : static_cast<double>(dispatch_touched) /
                     static_cast<double>(dispatch_probes);
  }
};

/// The detection-engine seam between rule evaluation and its callers
/// (DistributedRuntime, SentinelService): everything they need to
/// compile rules, deliver occurrences, pump time, and observe state —
/// implemented sequentially by Detector and sharded by ParallelDetector.
///
/// Threading contract (docs/parallelism.md): all virtuals below must be
/// called from one thread at a time (the owner thread). Engines may run
/// internal workers, but the caller-facing surface is single-threaded;
/// rule callbacks always fire on the owner thread. Accessors reflect
/// fully processed input only after Drain() returns.
class DetectorEngine {
 public:
  using Callback = std::function<void(const EventPtr&)>;

  virtual ~DetectorEngine() = default;

  /// Compiles `expr` and registers `callback` to fire on every detected
  /// occurrence of the rule. Returns the rule's composite event type.
  virtual Result<EventTypeId> AddRule(const std::string& name,
                                      const ExprPtr& expr,
                                      Callback callback) = 0;

  /// Detaches the named rule's callback (buffered operator state is
  /// retained; see Detector::RemoveRule). NotFound if no such rule.
  virtual Status RemoveRule(const std::string& name) = 0;

  /// Delivers one occurrence. Feed order must be a linear extension of
  /// the composite `<` (the Sequencer's delivery contract).
  virtual void Feed(const EventPtr& event) = 0;

  /// Advances the engine clock (local ticks, monotone), firing due
  /// temporal-operator timers.
  virtual void AdvanceClockTo(LocalTicks now) = 0;

  /// Barrier: blocks until every occurrence and clock advance handed in
  /// so far is fully processed and every resulting rule callback has
  /// fired (on the calling thread). No-op for the sequential engine,
  /// whose processing is synchronous.
  virtual void Drain() = 0;

  /// Attaches the execution tracer (obs/trace.h). Call sites compile out
  /// unless -DSENTINELD_TRACE. The tracer is driven from the owner
  /// thread only.
  virtual void set_tracer(Tracer* tracer) = 0;

  virtual LocalTicks clock() const = 0;
  virtual size_t num_nodes() const = 0;
  virtual size_t total_state() const = 0;
  /// Retained state by operator kind, merged across shards.
  virtual std::map<std::string, size_t> StateByOp() const = 0;
  virtual uint64_t events_fed() const = 0;
  virtual uint64_t events_dropped() const = 0;
  virtual uint64_t timers_fired() const = 0;

  /// Worker-pool width: 1 for the sequential engine.
  virtual size_t num_shards() const = 0;
  /// The shard that hosts (or would host) the named rule. Pure function
  /// of the name and num_shards(), so callers can label per-rule
  /// instruments before AddRule. Always 0 for the sequential engine.
  virtual size_t ShardOfRule(const std::string& name) const = 0;
  /// Per-shard counter breakdown (one entry for the sequential engine).
  /// Like the scalar accessors, exact only after Drain().
  virtual std::vector<DetectorShardStats> PerShardStats() const = 0;

  /// Shared-DAG counters; `valid` only for the shared engine.
  virtual DetectorDagStats DagStats() const { return {}; }

  /// Whether this engine supports SaveState/LoadState checkpointing
  /// (docs/recovery.md). The sequential and shared engines do; the
  /// parallel engine does not (its state lives across worker threads).
  virtual bool checkpointable() const { return false; }

  /// Checkpoints the engine's mutable detection state onto `tape`.
  /// No-op unless checkpointable(); see Detector::SaveState and
  /// SharedDetector::SaveState for the per-engine tape layouts.
  virtual void SaveState(StateTape& tape) const { (void)tape; }

  /// Restores state written by SaveState. No-op unless checkpointable().
  virtual void LoadState(StateTape& tape) { (void)tape; }
};

}  // namespace sentineld

#endif  // SENTINELD_SNOOP_DETECTOR_ENGINE_H_
