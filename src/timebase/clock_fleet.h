#ifndef SENTINELD_TIMEBASE_CLOCK_FLEET_H_
#define SENTINELD_TIMEBASE_CLOCK_FLEET_H_

#include <cstdint>
#include <vector>

#include "timebase/local_clock.h"
#include "util/random.h"
#include "util/status.h"

namespace sentineld {

/// Parameters of the simulated clock-synchronization service. The paper
/// assumes clocks are kept within precision Pi by *some* synchronization
/// mechanism; this models a generic external synchronizer (Cristian/NTP
/// style): every `sync_interval_ns` each clock is re-anchored with a
/// residual error drawn uniformly from [-residual_bound_ns,
/// +residual_bound_ns]; between syncs the clock drifts at its own rate.
struct SyncPolicy {
  int64_t sync_interval_ns = 1'000'000'000;  // 1 s
  int64_t residual_bound_ns = 1'000'000;     // 1 ms residual after sync
  double max_drift_ppm = 100.0;              // per-clock |drift| bound

  /// When true (default), Create() rejects policies that cannot keep any
  /// two clocks within the configured precision Pi, and offsets are
  /// hard-clamped to Pi/2 — the paper's soundness precondition g_g > Pi
  /// is then actually delivered by the clocks. Setting false builds a
  /// MISCONFIGURED deployment whose real skew can exceed the Pi the time
  /// base claims: the ablation in bench/bench_distributed uses this to
  /// demonstrate what the 2g_g order loses when its precondition is
  /// violated (false orderings appear).
  bool enforce_precision = true;
};

/// A set of local clocks, one per site, kept within the configured
/// precision Pi. Owns the deviation trajectories; the simulation calls
/// AdvanceTo() as true time progresses so that periodic re-anchoring
/// happens on schedule.
class ClockFleet {
 public:
  /// Builds `num_sites` clocks with deviations drawn from `rng`
  /// (per-clock drift uniform in [-max_drift, +max_drift], initial
  /// residual uniform in the residual bound). Returns
  /// FailedPrecondition if the policy cannot guarantee Pi: we need
  /// residual_bound + max_drift * sync_interval <= Pi / 2 so that any two
  /// clocks stay within Pi (offsets are additionally hard-clamped to
  /// Pi/2, but a policy relying on the clamp is misconfigured).
  static Result<ClockFleet> Create(uint32_t num_sites,
                                   const TimebaseConfig& config,
                                   const SyncPolicy& policy, Rng& rng);

  /// Processes all synchronization rounds scheduled at or before `t`.
  /// Must be called with non-decreasing `t`.
  void AdvanceTo(TrueTimeNs t, Rng& rng);

  /// Stamps an event occurring at site `site` at true time `t`
  /// (advances synchronization first).
  PrimitiveTimestamp Stamp(SiteId site, TrueTimeNs t, Rng& rng);

  LocalClock& clock(SiteId site) { return clocks_[site]; }
  const LocalClock& clock(SiteId site) const { return clocks_[site]; }
  uint32_t num_sites() const { return static_cast<uint32_t>(clocks_.size()); }
  const TimebaseConfig& config() const { return config_; }

  /// Maximum |offset_i(t) - offset_j(t)| over all clock pairs — the
  /// realized precision at `t`; always <= Pi. Used by tests/benches.
  int64_t RealizedPrecisionAt(TrueTimeNs t) const;

 private:
  ClockFleet(std::vector<LocalClock> clocks, TimebaseConfig config,
             SyncPolicy policy)
      : clocks_(std::move(clocks)), config_(config), policy_(policy) {}

  std::vector<LocalClock> clocks_;
  TimebaseConfig config_;
  SyncPolicy policy_;
  TrueTimeNs next_sync_ = 0;
};

}  // namespace sentineld

#endif  // SENTINELD_TIMEBASE_CLOCK_FLEET_H_
