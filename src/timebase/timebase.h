#ifndef SENTINELD_TIMEBASE_TIMEBASE_H_
#define SENTINELD_TIMEBASE_TIMEBASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "timebase/config.h"
#include "timestamp/primitive_timestamp.h"
#include "util/status.h"

namespace sentineld {

/// Which ordering backend a deployment runs on (docs/timebase.md). The
/// paper's approximated-global-time model (Defs 4.3–4.7) is one point in
/// a design space; the logical-clock backends serve the same
/// happens-before contract without synchronized clocks, at the price of
/// coarser (vector) or finer-but-arbitrary (HLC) concurrency resolution.
enum class TimebaseKind : uint8_t {
  kApproxGlobal = 0,  ///< paper triple over Pi-synchronized clocks
  kHlc = 1,           ///< hybrid logical clock: no sync needed
  kVector = 2,        ///< vector clock: exact causal order, no sync
};

const char* TimebaseKindToString(TimebaseKind kind);

/// Parses "approx" / "hlc" / "vector" (the daemon-config and CLI
/// spellings); InvalidArgument otherwise.
Result<TimebaseKind> ParseTimebaseKind(std::string_view text);

/// The stamp representation a backend produces.
StampRep StampRepFor(TimebaseKind kind);

/// Stamp for a temporal (timer) occurrence synthesized at `site` when the
/// host clock reads `tick`. Pure — detectors call this from any thread —
/// and deliberately state-free:
///  * kApproxGlobal: the Def 4.6 triple (site, TRUNC(tick), tick).
///  * kHlc: physical component = tick, logical = 0. An HLC physical
///    component never lags the physical clock, so the timer stamp is a
///    lower bound: events stamped at or after the timer's tick sort
///    after it.
///  * kVector: a frontier knowing only the host's own tick. Events that
///    causally learned the host passed `tick` sort after it; everything
///    else is concurrent — the degraded temporal resolution SL016 warns
///    about (docs/timebase.md).
PrimitiveTimestamp MakeTimerStamp(TimebaseKind kind, SiteId site,
                                  LocalTicks tick,
                                  const TimebaseConfig& config);

/// Strategy seam over the ordering stack: turns physical local-clock
/// readings into stamps and folds received remote stamps into per-site
/// clock state. One Timebase instance models the whole fleet's clock
/// state (one entry per site); in a real multi-process deployment each
/// sentineld owns an instance and only ever touches its own site's entry.
///
/// Stability watermark: every backend stores the originating site's
/// physical local-tick reading in `PrimitiveTimestamp::local`, and
/// ReleaseAnchor() exposes it. The Sequencer's stability window releases
/// against this anchor (dist/sequencer.h MinAnchorTick) under every
/// backend: for kApproxGlobal the window soundly bounds reordering (the
/// paper's Pi + delay argument); for the logical backends it bounds
/// buffering latency — HLC order then agrees with anchor order up to
/// clock skew, and vector order is causal, so any release order of
/// concurrent events is a valid linear extension.
///
/// Not thread-safe: callers serialize (the simulation and the daemon
/// event loop are single-threaded; detectors never touch a Timebase —
/// their timer stamps come from the pure MakeTimerStamp above).
class Timebase {
 public:
  virtual ~Timebase() = default;

  virtual TimebaseKind kind() const = 0;
  virtual uint32_t num_sites() const = 0;

  /// Stamps a locally-raised occurrence at `site` whose physical local
  /// clock reads `local_now` ticks. Advances the site's clock state
  /// (logical backends); successive calls per site with non-decreasing
  /// `local_now` produce strictly ordered stamps whenever `local_now`
  /// strictly increases.
  virtual PrimitiveTimestamp StampLocal(SiteId site, LocalTicks local_now) = 0;

  /// Folds knowledge from a received remote stamp into `site`'s clock
  /// state (the HLC receive rule / vector-frontier merge); `local_now` is
  /// the receiving site's current physical reading. No-op for
  /// kApproxGlobal (the synchronizer, not the messages, carries time).
  /// Stamps of a foreign rep degrade to their physical reading.
  virtual void Observe(SiteId site, const PrimitiveTimestamp& remote,
                       LocalTicks local_now) = 0;

  /// The stability anchor of `stamp` — the physical local tick the
  /// Sequencer's watermark releases against (identical across backends by
  /// the carrier invariant; see class docs).
  LocalTicks ReleaseAnchor(const PrimitiveTimestamp& stamp) const {
    return stamp.local;
  }
};

/// Builds a backend. kVector fails when `num_sites` exceeds
/// kMaxVectorSites (the inline-vector capacity of the stamp carrier).
Result<std::unique_ptr<Timebase>> MakeTimebase(TimebaseKind kind,
                                               uint32_t num_sites,
                                               const TimebaseConfig& config);

}  // namespace sentineld

#endif  // SENTINELD_TIMEBASE_TIMEBASE_H_
