#include "timebase/clock_fleet.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

Result<ClockFleet> ClockFleet::Create(uint32_t num_sites,
                                      const TimebaseConfig& config,
                                      const SyncPolicy& policy, Rng& rng) {
  RETURN_IF_ERROR(config.Validate());
  if (num_sites == 0) {
    return Status::InvalidArgument("need at least one site");
  }
  if (policy.sync_interval_ns <= 0 || policy.residual_bound_ns < 0 ||
      policy.max_drift_ppm < 0) {
    return Status::InvalidArgument("malformed sync policy");
  }
  const double worst_offset =
      static_cast<double>(policy.residual_bound_ns) +
      policy.max_drift_ppm * 1e-6 *
          static_cast<double>(policy.sync_interval_ns);
  if (policy.enforce_precision &&
      worst_offset > static_cast<double>(config.precision_ns) / 2.0) {
    return Status::FailedPrecondition(
        StrCat("sync policy cannot guarantee Pi=", config.precision_ns,
               "ns: worst per-clock offset ", worst_offset, "ns > Pi/2"));
  }

  std::vector<LocalClock> clocks;
  clocks.reserve(num_sites);
  // Without enforcement the clamp is lifted far beyond Pi/2, so the
  // realized precision is whatever the (mis)configured drift produces.
  const int64_t clamp = policy.enforce_precision
                            ? config.precision_ns / 2
                            : 100 * config.precision_ns;
  for (SiteId site = 0; site < num_sites; ++site) {
    const double drift =
        (rng.NextDouble() * 2 - 1) * policy.max_drift_ppm;
    const int64_t residual =
        policy.residual_bound_ns == 0
            ? 0
            : rng.NextInt(-policy.residual_bound_ns,
                          policy.residual_bound_ns);
    clocks.emplace_back(site, config,
                        ClockDeviation(drift, residual, clamp));
  }
  return ClockFleet(std::move(clocks), config, policy);
}

void ClockFleet::AdvanceTo(TrueTimeNs t, Rng& rng) {
  while (next_sync_ <= t) {
    for (LocalClock& clock : clocks_) {
      const int64_t residual =
          policy_.residual_bound_ns == 0
              ? 0
              : rng.NextInt(-policy_.residual_bound_ns,
                            policy_.residual_bound_ns);
      clock.deviation().SyncAt(next_sync_, residual);
    }
    next_sync_ += policy_.sync_interval_ns;
  }
}

PrimitiveTimestamp ClockFleet::Stamp(SiteId site, TrueTimeNs t, Rng& rng) {
  CHECK_LT(site, clocks_.size());
  AdvanceTo(t, rng);
  return clocks_[site].Stamp(t);
}

int64_t ClockFleet::RealizedPrecisionAt(TrueTimeNs t) const {
  int64_t lo = 0, hi = 0;
  bool first = true;
  for (const LocalClock& clock : clocks_) {
    const int64_t off = clock.deviation().OffsetAt(t);
    if (first) {
      lo = hi = off;
      first = false;
    } else {
      lo = std::min(lo, off);
      hi = std::max(hi, off);
    }
  }
  return hi - lo;
}

}  // namespace sentineld
