#include "timebase/local_clock.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sentineld {

ClockDeviation::ClockDeviation(double drift_ppm, int64_t residual_ns,
                               int64_t max_abs_ns)
    : drift_ppm_(drift_ppm),
      residual_ns_(residual_ns),
      max_abs_ns_(max_abs_ns) {
  CHECK_GE(max_abs_ns, 0);
}

int64_t ClockDeviation::OffsetAt(TrueTimeNs t) const {
  const double elapsed = static_cast<double>(t - last_sync_);
  const int64_t raw =
      residual_ns_ + std::llround(drift_ppm_ * 1e-6 * elapsed);
  return std::clamp(raw, -max_abs_ns_, max_abs_ns_);
}

void ClockDeviation::SyncAt(TrueTimeNs t, int64_t residual_ns) {
  last_sync_ = t;
  residual_ns_ = std::clamp(residual_ns, -max_abs_ns_, max_abs_ns_);
}

LocalClock::LocalClock(SiteId site, const TimebaseConfig& config,
                       ClockDeviation deviation)
    : site_(site), config_(config), deviation_(deviation) {
  CHECK_OK(config.Validate());
}

LocalTicks LocalClock::ReadLocalTicks(TrueTimeNs t) const {
  // Clamp at the epoch: a negatively-offset clock read just before t=0
  // still reports tick 0 (simulations start their workloads well after).
  const int64_t reading = std::max<int64_t>(0, t + deviation_.OffsetAt(t));
  return reading / config_.local_granularity_ns;
}

GlobalTicks LocalClock::GlobalOf(LocalTicks local) const {
  const int64_t ratio = config_.TicksPerGlobal();
  switch (config_.trunc) {
    case TruncPolicy::kFloor:
      return local / ratio;
    case TruncPolicy::kRound:
      return (local + ratio / 2) / ratio;
    case TruncPolicy::kCeil:
      return (local + ratio - 1) / ratio;
  }
  return local / ratio;
}

PrimitiveTimestamp LocalClock::Stamp(TrueTimeNs t) const {
  const LocalTicks local = ReadLocalTicks(t);
  return PrimitiveTimestamp{site_, GlobalOf(local), local};
}

}  // namespace sentineld
