#ifndef SENTINELD_TIMEBASE_LOCAL_CLOCK_H_
#define SENTINELD_TIMEBASE_LOCAL_CLOCK_H_

#include "timebase/config.h"
#include "timestamp/primitive_timestamp.h"

namespace sentineld {

/// Deviation model of one site's physical clock relative to the reference
/// clock: a piecewise-linear offset, `offset(t) = residual + drift * (t -
/// last_sync)`, re-anchored by ClockSynchronizer at each synchronization
/// round. The clock owner guarantees |offset| <= Pi/2 by clamping, which
/// together with the triangle inequality bounds any two clocks' mutual
/// offset by Pi — exactly the paper's precision model.
class ClockDeviation {
 public:
  /// drift in parts-per-million of elapsed true time (may be negative);
  /// residual is the offset right after the last synchronization.
  ClockDeviation(double drift_ppm, int64_t residual_ns, int64_t max_abs_ns);

  /// Offset of this clock vs. the reference at true time `t`, clamped to
  /// [-max_abs, +max_abs].
  int64_t OffsetAt(TrueTimeNs t) const;

  /// Re-anchors the deviation: after a synchronization at `t` the offset
  /// restarts from `residual_ns` (the sync algorithm's residual error).
  void SyncAt(TrueTimeNs t, int64_t residual_ns);

  double drift_ppm() const { return drift_ppm_; }

 private:
  double drift_ppm_;
  int64_t residual_ns_;
  int64_t max_abs_ns_;
  TrueTimeNs last_sync_ = 0;
};

/// A site's local physical clock (paper Sec. 4.1). Converts reference
/// ("true") time into local ticks and global time; the site can only ever
/// observe the outputs of this class, never TrueTimeNs itself.
class LocalClock {
 public:
  LocalClock(SiteId site, const TimebaseConfig& config,
             ClockDeviation deviation);

  /// The local calendar reading truncated to local granularity:
  /// floor((t + offset(t)) / g). Monotone in t for fixed deviation
  /// anchoring (drift magnitudes are << 1).
  LocalTicks ReadLocalTicks(TrueTimeNs t) const;

  /// Def 4.3: the global time of a local reading, `TRUNC_gg(clock(l))`,
  /// computed as local ticks divided by (g_g / g) under the configured
  /// TRUNC policy.
  GlobalTicks GlobalOf(LocalTicks local) const;

  /// Produces the full primitive timestamp (site, global, local) of an
  /// event occurring at true time `t` at this site (Def 4.6).
  PrimitiveTimestamp Stamp(TrueTimeNs t) const;

  /// Access for the synchronizer.
  ClockDeviation& deviation() { return deviation_; }
  const ClockDeviation& deviation() const { return deviation_; }

  SiteId site() const { return site_; }
  const TimebaseConfig& config() const { return config_; }

 private:
  SiteId site_;
  TimebaseConfig config_;
  ClockDeviation deviation_;
};

}  // namespace sentineld

#endif  // SENTINELD_TIMEBASE_LOCAL_CLOCK_H_
