#ifndef SENTINELD_TIMEBASE_CONFIG_H_
#define SENTINELD_TIMEBASE_CONFIG_H_

#include <cstdint>
#include <string>

#include "timestamp/primitive_timestamp.h"
#include "util/status.h"

namespace sentineld {

/// True (reference) time in nanoseconds since the simulation epoch. Plays
/// the role of the paper's reference clock `z`: a unique clock "in perfect
/// agreement with the international standard of time" that no site can
/// read directly — sites only see their own drifting local clocks.
using TrueTimeNs = int64_t;

/// How local calendar time is truncated to the global granularity
/// (paper Def 4.3: "the TRUNC function could be round, ceiling or floor
/// ... as long as it is consistent throughout the system"; the paper then
/// fixes integer division, i.e. floor, which is our default).
enum class TruncPolicy { kFloor, kRound, kCeil };

/// Static parameters of the distributed time base (paper Sec. 4.1).
/// Defaults reproduce the paper's Sec. 5.1 worked example: local clock
/// granularity g = 1/100 s, precision Pi < 1/10 s, global granularity
/// g_g = 1/10 s.
struct TimebaseConfig {
  /// Local clock granularity `g` in ns: one local tick per this many ns.
  int64_t local_granularity_ns = 10'000'000;  // 1/100 s

  /// Global granularity `g_g` in ns; must be an integer multiple of the
  /// local granularity and strictly greater than precision_ns.
  int64_t global_granularity_ns = 100'000'000;  // 1/10 s

  /// Synchronization precision `Pi` in ns: the maximum offset between
  /// corresponding ticks of any two local clocks, as observed by the
  /// reference clock. Soundness of the 2g_g order requires g_g > Pi.
  int64_t precision_ns = 99'000'000;  // Pi < 1/10 s

  /// TRUNC policy for Def 4.3.
  TruncPolicy trunc = TruncPolicy::kFloor;

  /// Local ticks per global tick (`g_g / g`).
  int64_t TicksPerGlobal() const {
    return global_granularity_ns / local_granularity_ns;
  }

  /// Checks positivity, divisibility, and the g_g > Pi soundness
  /// condition.
  Status Validate() const;

  std::string ToString() const;
};

/// Truncates a local-tick reading to its global tick under the config's
/// TRUNC policy (Def 4.3) — the same conversion LocalClock applies.
/// Lives here (not snoop/) so every layer below the detector can derive
/// approximated-global stamps from local ticks.
GlobalTicks TruncToGlobal(LocalTicks local, const TimebaseConfig& config);

}  // namespace sentineld

#endif  // SENTINELD_TIMEBASE_CONFIG_H_
