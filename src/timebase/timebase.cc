#include "timebase/timebase.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

/// The paper's backend: stamps are a pure function of the local reading
/// (Def 4.3/4.6), and message receipt carries no clock information — the
/// external synchronizer (ClockFleet) keeps sites within Pi.
class ApproxGlobalTimebase : public Timebase {
 public:
  ApproxGlobalTimebase(uint32_t num_sites, const TimebaseConfig& config)
      : num_sites_(num_sites), config_(config) {}

  TimebaseKind kind() const override { return TimebaseKind::kApproxGlobal; }
  uint32_t num_sites() const override { return num_sites_; }

  PrimitiveTimestamp StampLocal(SiteId site, LocalTicks local_now) override {
    CHECK(site < num_sites_);
    return PrimitiveTimestamp{site, TruncToGlobal(local_now, config_),
                              local_now};
  }

  void Observe(SiteId, const PrimitiveTimestamp&, LocalTicks) override {}

 private:
  uint32_t num_sites_;
  TimebaseConfig config_;
};

/// Hybrid logical clock: each site keeps (pt, c) with pt never lagging
/// its physical reading. Send/local events tick via StampLocal, receives
/// merge via Observe — the standard HLC update rules, with the physical
/// component measured in local ticks.
class HlcTimebase : public Timebase {
 public:
  HlcTimebase(uint32_t num_sites, const TimebaseConfig& config)
      : config_(config), state_(num_sites) {}

  TimebaseKind kind() const override { return TimebaseKind::kHlc; }
  uint32_t num_sites() const override {
    return static_cast<uint32_t>(state_.size());
  }

  PrimitiveTimestamp StampLocal(SiteId site, LocalTicks local_now) override {
    CHECK(site < state_.size());
    SiteState& st = state_[site];
    if (local_now > st.pt) {
      st.pt = local_now;
      st.c = 0;
    } else {
      ++st.c;
    }
    PrimitiveTimestamp stamp;
    stamp.site = site;
    stamp.global = st.pt;
    stamp.local = local_now;
    stamp.logical = st.c;
    stamp.rep = StampRep::kHlc;
    return stamp;
  }

  void Observe(SiteId site, const PrimitiveTimestamp& remote,
               LocalTicks local_now) override {
    CHECK(site < state_.size());
    SiteState& st = state_[site];
    // Foreign-rep stamps degrade to their physical reading at logical 0.
    const int64_t rpt =
        remote.rep == StampRep::kHlc ? remote.global : remote.local;
    const uint32_t rc = remote.rep == StampRep::kHlc ? remote.logical : 0;
    const int64_t m = std::max({st.pt, rpt, local_now});
    if (m == st.pt && m == rpt) {
      st.c = std::max(st.c, rc) + 1;
    } else if (m == st.pt) {
      ++st.c;
    } else if (m == rpt) {
      st.c = rc + 1;
    } else {
      st.c = 0;
    }
    st.pt = m;
  }

 private:
  struct SiteState {
    int64_t pt = 0;   ///< HLC physical component, in local ticks
    uint32_t c = 0;   ///< HLC logical component
  };
  TimebaseConfig config_;
  std::vector<SiteState> state_;
};

/// Vector clock with local-tick components: each site keeps the latest
/// local tick it knows (directly or transitively) of every site. Order
/// is exact causality — Mattern's theorem, with the per-site counter
/// instantiated as the physical local tick (any strictly monotone
/// per-site counter works).
class VectorTimebase : public Timebase {
 public:
  VectorTimebase(uint32_t num_sites, const TimebaseConfig& config)
      : config_(config), frontier_(num_sites) {
    for (auto& f : frontier_) f.assign(num_sites, 0);
  }

  TimebaseKind kind() const override { return TimebaseKind::kVector; }
  uint32_t num_sites() const override {
    return static_cast<uint32_t>(frontier_.size());
  }

  PrimitiveTimestamp StampLocal(SiteId site, LocalTicks local_now) override {
    CHECK(site < frontier_.size());
    std::vector<int64_t>& f = frontier_[site];
    f[site] = std::max(f[site], local_now);
    PrimitiveTimestamp stamp;
    stamp.site = site;
    stamp.local = local_now;
    stamp.rep = StampRep::kVector;
    stamp.vec_size = static_cast<uint8_t>(f.size());
    for (size_t i = 0; i < f.size(); ++i) stamp.vec[i] = f[i];
    stamp.global = f[site];
    return stamp;
  }

  void Observe(SiteId site, const PrimitiveTimestamp& remote,
               LocalTicks) override {
    CHECK(site < frontier_.size());
    std::vector<int64_t>& f = frontier_[site];
    for (uint32_t i = 0; i < remote.vec_size && i < f.size(); ++i) {
      f[i] = std::max(f[i], remote.vec[i]);
    }
    // Foreign-rep stamps still pin the sender's own physical reading.
    if (remote.site < f.size()) {
      f[remote.site] = std::max(f[remote.site], remote.local);
    }
  }

 private:
  TimebaseConfig config_;
  /// frontier_[site][i]: latest tick of site i known at `site`.
  std::vector<std::vector<int64_t>> frontier_;
};

}  // namespace

const char* TimebaseKindToString(TimebaseKind kind) {
  switch (kind) {
    case TimebaseKind::kApproxGlobal:
      return "approx";
    case TimebaseKind::kHlc:
      return "hlc";
    case TimebaseKind::kVector:
      return "vector";
  }
  return "?";
}

Result<TimebaseKind> ParseTimebaseKind(std::string_view text) {
  if (text == "approx") return TimebaseKind::kApproxGlobal;
  if (text == "hlc") return TimebaseKind::kHlc;
  if (text == "vector") return TimebaseKind::kVector;
  return Status::InvalidArgument(
      StrCat("unknown timebase '", std::string(text),
             "' (want approx|hlc|vector)"));
}

StampRep StampRepFor(TimebaseKind kind) {
  switch (kind) {
    case TimebaseKind::kApproxGlobal:
      return StampRep::kApproxGlobal;
    case TimebaseKind::kHlc:
      return StampRep::kHlc;
    case TimebaseKind::kVector:
      return StampRep::kVector;
  }
  return StampRep::kApproxGlobal;
}

PrimitiveTimestamp MakeTimerStamp(TimebaseKind kind, SiteId site,
                                  LocalTicks tick,
                                  const TimebaseConfig& config) {
  PrimitiveTimestamp stamp;
  stamp.site = site;
  stamp.local = tick;
  switch (kind) {
    case TimebaseKind::kApproxGlobal:
      stamp.global = TruncToGlobal(tick, config);
      break;
    case TimebaseKind::kHlc:
      stamp.global = tick;
      stamp.rep = StampRep::kHlc;
      break;
    case TimebaseKind::kVector:
      stamp.rep = StampRep::kVector;
      stamp.global = tick;
      stamp.vec_size = static_cast<uint8_t>(
          std::min<uint32_t>(site + 1, kMaxVectorSites));
      if (site < kMaxVectorSites) stamp.vec[site] = tick;
      break;
  }
  return stamp;
}

Result<std::unique_ptr<Timebase>> MakeTimebase(TimebaseKind kind,
                                               uint32_t num_sites,
                                               const TimebaseConfig& config) {
  if (num_sites == 0) {
    return Status::InvalidArgument("timebase needs at least one site");
  }
  switch (kind) {
    case TimebaseKind::kApproxGlobal:
      RETURN_IF_ERROR(config.Validate());
      return std::unique_ptr<Timebase>(
          new ApproxGlobalTimebase(num_sites, config));
    case TimebaseKind::kHlc:
      return std::unique_ptr<Timebase>(new HlcTimebase(num_sites, config));
    case TimebaseKind::kVector:
      if (num_sites > kMaxVectorSites) {
        return Status::InvalidArgument(
            StrCat("vector timebase supports at most ", kMaxVectorSites,
                   " sites (stamps carry the frontier inline); got ",
                   num_sites));
      }
      return std::unique_ptr<Timebase>(new VectorTimebase(num_sites, config));
  }
  return Status::InvalidArgument("unknown timebase kind");
}

}  // namespace sentineld
