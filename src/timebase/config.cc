#include "timebase/config.h"

#include "util/string_util.h"

namespace sentineld {

Status TimebaseConfig::Validate() const {
  if (local_granularity_ns <= 0) {
    return Status::InvalidArgument("local granularity must be positive");
  }
  if (global_granularity_ns <= 0) {
    return Status::InvalidArgument("global granularity must be positive");
  }
  if (precision_ns < 0) {
    return Status::InvalidArgument("precision must be non-negative");
  }
  if (global_granularity_ns % local_granularity_ns != 0) {
    return Status::InvalidArgument(
        "global granularity must be a multiple of local granularity");
  }
  if (global_granularity_ns <= precision_ns) {
    // g_g > Pi is the condition under which two simultaneous events get
    // global times at most one tick apart (Sec. 4.1); without it the
    // 2g_g-restricted order is unsound.
    return Status::FailedPrecondition(
        StrCat("g_g (", global_granularity_ns, "ns) must exceed precision Pi (",
               precision_ns, "ns)"));
  }
  return Status::Ok();
}

GlobalTicks TruncToGlobal(LocalTicks local, const TimebaseConfig& config) {
  const int64_t ratio = config.TicksPerGlobal();
  switch (config.trunc) {
    case TruncPolicy::kFloor:
      return local / ratio;
    case TruncPolicy::kRound:
      return (local + ratio / 2) / ratio;
    case TruncPolicy::kCeil:
      return (local + ratio - 1) / ratio;
  }
  return local / ratio;
}

std::string TimebaseConfig::ToString() const {
  return StrCat("TimebaseConfig{g=", local_granularity_ns,
                "ns, g_g=", global_granularity_ns, "ns, Pi=", precision_ns,
                "ns, ticks/global=", TicksPerGlobal(), "}");
}

}  // namespace sentineld
