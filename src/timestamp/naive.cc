#include "timestamp/naive.h"

#include <tuple>

namespace sentineld::naive {

bool HappensBefore(const PrimitiveTimestamp& a,
                   const PrimitiveTimestamp& b) {
  return std::tie(a.local, a.site) < std::tie(b.local, b.site);
}

bool Concurrent(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  return !naive::HappensBefore(a, b) && !naive::HappensBefore(b, a);
}

}  // namespace sentineld::naive
