#ifndef SENTINELD_TIMESTAMP_MAX_OPERATOR_H_
#define SENTINELD_TIMESTAMP_MAX_OPERATOR_H_

#include <span>

#include "timestamp/composite_timestamp.h"

namespace sentineld {

/// Joining of *concurrent* composite timestamps (paper Def 5.7): the plain
/// set union (deduplicated). Requires Concurrent(a, b); the result is a
/// valid composite timestamp because pairwise concurrency is preserved by
/// the precondition, and it equals max(T(a) ∪ T(b)).
CompositeTimestamp JoinConcurrent(const CompositeTimestamp& a,
                                  const CompositeTimestamp& b);

/// Joining of *incomparable* composite timestamps (paper Def 5.8, with the
/// evident missing negations restored — see DESIGN.md): keep from each side
/// the elements NOT happening-before any element of the other side, i.e.
/// keep only the "latest" information:
///
///   {t in T(a) : ¬∃ t2 in T(b), t < t2} ∪
///   {t in T(b) : ¬∃ t1 in T(a), t < t1}
///
/// With the negations restored this is exactly max(T(a) ∪ T(b)).
CompositeTimestamp JoinIncomparable(const CompositeTimestamp& a,
                                    const CompositeTimestamp& b);

/// The Max operator, used to propagate composite timestamps up the
/// event-detection graph (the distributed analogue of the centralized
/// `t_occ` assignment).
///
/// Specification: Max(T1, T2) = max(T1 ∪ T2) (Def 5.1 applied to the
/// union), which is what Def 5.2 requires of the resulting composite
/// timestamp and what Theorem 5.4 asserts. Empty operands act as identity
/// elements ("no constituent occurrence contributed"). Associative and
/// commutative (property-tested), so n-ary propagation order is
/// irrelevant.
///
/// NOTE (reproduction finding, see EXPERIMENTS.md): the paper's literal
/// case-split Def 5.9 — return T1 outright when T2 < T1 — is NOT always
/// equal to max(T1 ∪ T2) under the paper's own `<`:
///   T1 = {(s1,10,100)},  T2 = {(s1,10,99), (s2,9,95)}
/// has T2 < T1 (the element (s1,10,99) is below (s1,10,100)), yet
/// (s2,9,95) is concurrent with (s1,10,100) and so survives in
/// max(T1 ∪ T2) = {(s1,10,100), (s2,9,95)} ≠ T1. We therefore take
/// Theorem 5.4's right-hand side as the definition; the literal case
/// split is kept as MaxCaseSplit() and its divergence rate is measured in
/// bench/cex_transitivity.
CompositeTimestamp Max(const CompositeTimestamp& a,
                       const CompositeTimestamp& b);

/// The literal case-split of paper Def 5.9:
///
///   MaxCaseSplit(T1, T2) = T1              if T2 < T1
///                        = T2              if T1 < T2
///                        = join(T1, T2)    if concurrent or incomparable
///
/// Kept for the ablation experiment; agrees with Max() except when a
/// happen-before branch fires while the "smaller" operand still contains
/// an element concurrent with everything in the "larger" one.
CompositeTimestamp MaxCaseSplit(const CompositeTimestamp& a,
                                const CompositeTimestamp& b);

/// N-ary fold of Max over `stamps`. Empty input yields the empty
/// timestamp.
CompositeTimestamp MaxAll(std::span<const CompositeTimestamp> stamps);

/// The dual fold: min over the union of all elements (dual of Theorem
/// 5.4). Used to propagate occurrence-START stamps for the interval-
/// semantics extension.
CompositeTimestamp MinAll(std::span<const CompositeTimestamp> stamps);

}  // namespace sentineld

#endif  // SENTINELD_TIMESTAMP_MAX_OPERATOR_H_
