#ifndef SENTINELD_TIMESTAMP_INTERVAL_H_
#define SENTINELD_TIMESTAMP_INTERVAL_H_

#include <optional>

#include "timestamp/composite_timestamp.h"
#include "timestamp/primitive_timestamp.h"

namespace sentineld {

/// Intervals over timestamps, needed by the interval-forming Snoop
/// operators (A, A*, P, P*, NOT). Paper Defs 4.9/4.10 (primitive) and
/// 5.5/5.6 (composite); Figure 1 visualizes the primitive case.

/// Open interval membership (Def 4.9): T(a) < T(t) < T(b).
/// Requires T(a) < T(b) (the interval would be malformed otherwise);
/// returns false for malformed bounds rather than asserting, since event
/// streams routinely present candidate initiator/terminator pairs that do
/// not form an interval.
bool InOpenInterval(const PrimitiveTimestamp& t, const PrimitiveTimestamp& a,
                    const PrimitiveTimestamp& b);

/// Closed interval membership (Def 4.10): T(a) ⪯ T(t) ⪯ T(b), meaningful
/// when T(a) ⪯ T(b). Returns false for malformed bounds.
bool InClosedInterval(const PrimitiveTimestamp& t,
                      const PrimitiveTimestamp& a,
                      const PrimitiveTimestamp& b);

/// Inclusive range of *global* ticks that a cross-site event may occupy
/// while lying in the open interval (T(a), T(b)) — the derivation below
/// Def 4.9 and the upper band of Figure 1:
///
///   (T(a).global, T(b).global)~ = { a.global + 2, ..., b.global - 2 }
///
/// Returns nullopt when the band is empty (requires
/// a.global < b.global - 3 for a cross-site member to be possible).
struct GlobalTickBand {
  GlobalTicks first;  ///< smallest admissible global tick
  GlobalTicks last;   ///< largest admissible global tick (inclusive)
};
std::optional<GlobalTickBand> OpenIntervalGlobalBand(
    const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Inclusive range of global ticks compatible with membership in the
/// closed interval [T(a), T(b)] — the lower band of Figure 1:
///
///   [T(a).global, T(b).global]~ = { a.global - 1, ..., b.global + 1 }
std::optional<GlobalTickBand> ClosedIntervalGlobalBand(
    const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Open interval membership on composite timestamps (Def 5.5):
/// T(a) < T(t) < T(b) under the composite `<`.
bool InOpenInterval(const CompositeTimestamp& t, const CompositeTimestamp& a,
                    const CompositeTimestamp& b);

/// Closed interval membership on composite timestamps (Def 5.6):
/// T(a) ⪯̃ T(t) ⪯̃ T(b).
bool InClosedInterval(const CompositeTimestamp& t,
                      const CompositeTimestamp& a,
                      const CompositeTimestamp& b);

}  // namespace sentineld

#endif  // SENTINELD_TIMESTAMP_INTERVAL_H_
