#ifndef SENTINELD_TIMESTAMP_COMPOSITE_TIMESTAMP_H_
#define SENTINELD_TIMESTAMP_COMPOSITE_TIMESTAMP_H_

#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "timestamp/primitive_timestamp.h"
#include "util/small_vector.h"
#include "util/status.h"

namespace sentineld {

/// Storage for a composite timestamp's maxima: two stamps live inline
/// (singletons — every primitive event — and pairs never allocate; by
/// Thm 5.1 the maxima set stays tiny even for deep compositions), wider
/// antichains spill to the heap.
using StampVec = SmallVector<PrimitiveTimestamp, 2>;

/// Timestamp of a distributed composite event (paper Def 5.2): the set of
/// *maxima* of the constituent primitive timestamps collected when the
/// composite event occurs.
///
/// Class invariant (checked in debug via IsValid, guaranteed by every
/// factory): the stored primitive timestamps are
///   (a) exactly the maxima of the set they were built from — no element
///       happens-before another element (Def 5.1), which by Theorem 5.1
///       makes them pairwise concurrent; and
///   (b) stored deduplicated in canonical (site, global, local) order, so
///       structural equality of CompositeTimestamps is set equality.
///
/// This is the paper's point of departure from Schwiderski [10]: the
/// "latest" property is *enforced by construction* (it generalizes the
/// centralized `t_occ`), rather than carrying every constituent timestamp.
///
/// An empty CompositeTimestamp represents "no occurrence yet" and is never
/// the timestamp of a detected event; the temporal relations below require
/// non-empty operands (the quantifiers in Def 5.3 degenerate on the empty
/// set and would break irreflexivity).
class CompositeTimestamp {
 public:
  /// Empty timestamp ("no occurrence").
  CompositeTimestamp() = default;

  /// The timestamp of a primitive event lifted to a composite timestamp:
  /// the singleton {t}. Centralized Sentinel semantics are exactly the
  /// distributed semantics restricted to singletons from a single site.
  static CompositeTimestamp FromSingle(const PrimitiveTimestamp& t);

  /// Builds max(ST) from an arbitrary set of primitive timestamps
  /// (Def 5.1): keeps every t with no t1 in ST such that t < t1. Input
  /// need not be sorted or unique. O(n^2) in the (small) set size.
  static CompositeTimestamp MaxOf(std::span<const PrimitiveTimestamp> set);
  static CompositeTimestamp MaxOf(
      std::initializer_list<PrimitiveTimestamp> set);

  /// The dual of MaxOf: min(ST), the set of minima (elements with no
  /// other element happening before them). By the dual of Theorem 5.1
  /// they are pairwise concurrent, so the result satisfies the same
  /// class invariant. Used by the interval-semantics extension to track
  /// when a composite occurrence *started* (its earliest constituents),
  /// not just when it completed.
  static CompositeTimestamp MinOf(std::span<const PrimitiveTimestamp> set);
  static CompositeTimestamp MinOf(
      std::initializer_list<PrimitiveTimestamp> set);

  /// Validates that `stamps` is already a set of pairwise-concurrent maxima
  /// and adopts it; returns InvalidArgument otherwise. Use MaxOf when the
  /// input is not known to be maximal.
  static Result<CompositeTimestamp> FromMaximalSet(
      std::vector<PrimitiveTimestamp> stamps);

  /// The maxima, deduplicated, in canonical order. A view into storage
  /// owned by this timestamp — it is invalidated by assignment.
  std::span<const PrimitiveTimestamp> stamps() const {
    return {stamps_.data(), stamps_.size()};
  }

  bool empty() const { return stamps_.empty(); }
  size_t size() const { return stamps_.size(); }

  /// Re-verifies the class invariant (pairwise concurrency + canonical
  /// order). Intended for tests and debug assertions.
  bool IsValid() const;

  /// Renders "{(site, global, local), ...}", the paper's notation.
  std::string ToString() const;

  /// Structural (set) equality.
  friend bool operator==(const CompositeTimestamp&,
                         const CompositeTimestamp&) = default;

 private:
  explicit CompositeTimestamp(StampVec stamps) : stamps_(std::move(stamps)) {}

  StampVec stamps_;
};

std::ostream& operator<<(std::ostream& os, const CompositeTimestamp& t);

/// Outcome of comparing two composite timestamps under Def 5.3. For
/// non-empty valid operands exactly one holds.
enum class CompositeRelation {
  kBefore,        ///< T(a) < T(b)
  kAfter,         ///< T(b) < T(a)
  kConcurrent,    ///< T(a) ~ T(b)
  kIncomparable,  ///< none of the above (the paper's `≬`)
};

const char* CompositeRelationToString(CompositeRelation r);

/// Happen-before `<` on composite timestamps (Def 5.3(2)):
///
///   T(a) < T(b)  iff  for every t2 in T(b) there exists t1 in T(a)
///                     with t1 < t2 (primitive happen-before).
///
/// This is the forall-exists form the paper derives as one of exactly two
/// least-restricted strict partial orders (irreflexive + transitive,
/// Theorem 5.2) meeting its three requirements in Sec. 5.1.
/// Both operands must be non-empty.
bool Before(const CompositeTimestamp& a, const CompositeTimestamp& b);

/// Concurrency `~` (Def 5.3(1)): every element of T(a) is (primitively)
/// concurrent with every element of T(b). Both operands must be non-empty.
bool Concurrent(const CompositeTimestamp& a, const CompositeTimestamp& b);

/// Incomparability `≬` (Def 5.3(3)): neither before, after, nor concurrent.
bool Incomparable(const CompositeTimestamp& a, const CompositeTimestamp& b);

/// Weaker-less-than-or-equal `⪯̃` (Def 5.4): every t1 in T(a) weakly
/// precedes every t2 in T(b). By Theorem 5.3 this is equivalent to
/// `a ~ b or a < b` (property-tested).
bool WeakPrecedes(const CompositeTimestamp& a, const CompositeTimestamp& b);

/// Classifies the pair into its unique CompositeRelation.
CompositeRelation Classify(const CompositeTimestamp& a,
                           const CompositeTimestamp& b);

}  // namespace sentineld

#endif  // SENTINELD_TIMESTAMP_COMPOSITE_TIMESTAMP_H_
