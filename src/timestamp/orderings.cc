#include "timestamp/orderings.h"

#include "util/checked.h"
#include "util/logging.h"

namespace sentineld {
namespace {

// Raw relation bodies, shared by the public comparators and their
// checked-build self-checks (which must not recurse through the
// checking wrappers).

bool ExistsExistsImpl(const CompositeTimestamp& a,
                      const CompositeTimestamp& b) {
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (HappensBefore(t1, t2)) return true;
    }
  }
  return false;
}

bool ForallForallImpl(const CompositeTimestamp& a,
                      const CompositeTimestamp& b) {
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (!HappensBefore(t1, t2)) return false;
    }
  }
  return true;
}

bool MinDominatesImpl(const CompositeTimestamp& a,
                      const CompositeTimestamp& b) {
  // The element of T(a) with minimum global time; ties broken by the
  // canonical storage order (stamps() is canonically sorted, so the first
  // element with the minimal global value is deterministic).
  const PrimitiveTimestamp* min_t = &a.stamps().front();
  for (const PrimitiveTimestamp& t : a.stamps()) {
    if (t.global < min_t->global) min_t = &t;
  }
  for (const PrimitiveTimestamp& t2 : b.stamps()) {
    if (!HappensBefore(*min_t, t2)) return false;
  }
  return true;
}

bool GImpl(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    bool found = false;
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (HappensBefore(t1, t2)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool BeforeExistsExists(const CompositeTimestamp& a,
                        const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  const bool result = ExistsExistsImpl(a, b);
  // <_p1 is the knowingly defective candidate (neither transitive nor
  // antisymmetric — see AllOrderings and the cex_transitivity
  // experiment), so checked builds assert only irreflexivity, which any
  // relation over valid antichains must satisfy.
  SENTINELD_ASSERT(!ExistsExistsImpl(a, a) && !ExistsExistsImpl(b, b));
  return result;
}

bool BeforeForallForall(const CompositeTimestamp& a,
                        const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  const bool result = ForallForallImpl(a, b);
#if SENTINELD_CHECKED_ENABLED
  SENTINELD_ASSERT(!ForallForallImpl(a, a) && !ForallForallImpl(b, b));
  SENTINELD_ASSERT(!(result && ForallForallImpl(b, a)));
#endif
  return result;
}

bool BeforeMinDominates(const CompositeTimestamp& a,
                        const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  const bool result = MinDominatesImpl(a, b);
#if SENTINELD_CHECKED_ENABLED
  SENTINELD_ASSERT(!MinDominatesImpl(a, a) && !MinDominatesImpl(b, b));
  SENTINELD_ASSERT(!(result && MinDominatesImpl(b, a)));
#endif
  return result;
}

bool BeforeG(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  const bool result = GImpl(a, b);
#if SENTINELD_CHECKED_ENABLED
  SENTINELD_ASSERT(!GImpl(a, a) && !GImpl(b, b));
  SENTINELD_ASSERT(!(result && GImpl(b, a)));
#endif
  return result;
}

const std::vector<NamedOrdering>& AllOrderings() {
  static const std::vector<NamedOrdering>& orderings =
      *new std::vector<NamedOrdering>{
          {"<_p (paper)", &Before, /*claimed_transitive=*/true},
          {"<_g (dual)", &BeforeG, /*claimed_transitive=*/true},
          {"<_p1 (exists-exists)", &BeforeExistsExists,
           /*claimed_transitive=*/false},
          {"<_p2 (forall-forall)", &BeforeForallForall,
           /*claimed_transitive=*/true},
          {"<_p3 (min-dominates)", &BeforeMinDominates,
           /*claimed_transitive=*/true},
      };
  return orderings;
}

}  // namespace sentineld
