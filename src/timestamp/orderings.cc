#include "timestamp/orderings.h"

#include "util/logging.h"

namespace sentineld {

bool BeforeExistsExists(const CompositeTimestamp& a,
                        const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (HappensBefore(t1, t2)) return true;
    }
  }
  return false;
}

bool BeforeForallForall(const CompositeTimestamp& a,
                        const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (!HappensBefore(t1, t2)) return false;
    }
  }
  return true;
}

bool BeforeMinDominates(const CompositeTimestamp& a,
                        const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  // The element of T(a) with minimum global time; ties broken by the
  // canonical storage order (stamps() is canonically sorted, so the first
  // element with the minimal global value is deterministic).
  const PrimitiveTimestamp* min_t = &a.stamps().front();
  for (const PrimitiveTimestamp& t : a.stamps()) {
    if (t.global < min_t->global) min_t = &t;
  }
  for (const PrimitiveTimestamp& t2 : b.stamps()) {
    if (!HappensBefore(*min_t, t2)) return false;
  }
  return true;
}

bool BeforeG(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    bool found = false;
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (HappensBefore(t1, t2)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

const std::vector<NamedOrdering>& AllOrderings() {
  static const std::vector<NamedOrdering>& orderings =
      *new std::vector<NamedOrdering>{
          {"<_p (paper)", &Before, /*claimed_transitive=*/true},
          {"<_g (dual)", &BeforeG, /*claimed_transitive=*/true},
          {"<_p1 (exists-exists)", &BeforeExistsExists,
           /*claimed_transitive=*/false},
          {"<_p2 (forall-forall)", &BeforeForallForall,
           /*claimed_transitive=*/true},
          {"<_p3 (min-dominates)", &BeforeMinDominates,
           /*claimed_transitive=*/true},
      };
  return orderings;
}

}  // namespace sentineld
