#ifndef SENTINELD_TIMESTAMP_SCHWIDERSKI_H_
#define SENTINELD_TIMESTAMP_SCHWIDERSKI_H_

#include <span>
#include <string>
#include <vector>

#include "timestamp/primitive_timestamp.h"

namespace sentineld::schwiderski {

/// Baseline: the composite-timestamp handling of Schwiderski's
/// dissertation [10], as characterized by the paper's related-work and
/// Sec. 5.1 discussion. It differs from sentineld::CompositeTimestamp in
/// two ways the paper calls out:
///
///  1. No "latest"/concurrency enforcement: the timestamp of a composite
///     event carries the timestamps of ALL constituents, not just the
///     maxima. (Paper Sec. 2: "only the latest time stamps is considered
///     ... which is corresponding to the concept of t_occ" — in [10] it is
///     not.)
///  2. Its happen-before on these sets is NOT transitive (the paper proves
///     this with a counterexample in Sec. 5.1), so it is not a
///     well-defined strict partial order.
///
/// Per the paper's quantifier analysis ("we need at least one of the
/// existential quantifiers to be changed to the universal quantifier ...
/// if not, there will always exist cases when the transitivity does not
/// hold"), the flawed form is the existential one; we implement the
/// baseline ordering as the exists-exists comparison over unfiltered
/// constituent sets, which exhibits exactly the failure mode the paper
/// attributes to [10]. bench/cex_transitivity reproduces a concrete
/// violating triple (adapted from the paper's; the printed values are
/// OCR-damaged, see DESIGN.md) and measures the violation rate.
class Timestamp {
 public:
  Timestamp() = default;
  explicit Timestamp(std::vector<PrimitiveTimestamp> stamps);

  /// All constituent primitive stamps, canonically sorted, deduplicated,
  /// NOT max-filtered. Unlike CompositeTimestamp the set is unbounded
  /// (it grows with composition depth — the paper's core criticism), so
  /// storage stays a plain vector; the accessor is a span so callers and
  /// the baseline ordering below are layout-agnostic.
  std::span<const PrimitiveTimestamp> stamps() const {
    return {stamps_.data(), stamps_.size()};
  }

  bool empty() const { return stamps_.empty(); }
  size_t size() const { return stamps_.size(); }
  std::string ToString() const;

  friend bool operator==(const Timestamp&, const Timestamp&) = default;

 private:
  std::vector<PrimitiveTimestamp> stamps_;
};

/// Baseline happen-before: some constituent of `a` happens before some
/// constituent of `b`. Irreflexive on per-site-monotone inputs but not
/// transitive in general.
bool Before(const Timestamp& a, const Timestamp& b);

/// Baseline concurrency: neither Before(a, b) nor Before(b, a).
bool Concurrent(const Timestamp& a, const Timestamp& b);

/// Baseline "joining" operator (the paper's Sec. 5.2 notes its own joins
/// are "conceptually same as the joining in [10]" but with the latest /
/// concurrency properties enforced — here they are not): the plain union
/// of the constituent sets, no max-filtering.
Timestamp Join(const Timestamp& a, const Timestamp& b);

}  // namespace sentineld::schwiderski

#endif  // SENTINELD_TIMESTAMP_SCHWIDERSKI_H_
