#include "timestamp/primitive_timestamp.h"

#include <tuple>

#include "util/string_util.h"

namespace sentineld {

std::string PrimitiveTimestamp::ToString() const {
  return StrCat("(", site, ", ", global, ", ", local, ")");
}

std::ostream& operator<<(std::ostream& os, const PrimitiveTimestamp& t) {
  return os << t.ToString();
}

bool CanonicalLess(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  return std::tie(a.site, a.global, a.local) <
         std::tie(b.site, b.global, b.local);
}

const char* PrimitiveRelationToString(PrimitiveRelation r) {
  switch (r) {
    case PrimitiveRelation::kBefore:
      return "<";
    case PrimitiveRelation::kAfter:
      return ">";
    case PrimitiveRelation::kSimultaneous:
      return "=";
    case PrimitiveRelation::kConcurrent:
      return "~";
  }
  return "?";
}

bool HappensBefore(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  if (a.site == b.site) return a.local < b.local;
  return a.global < b.global - 1;
}

bool Simultaneous(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  return a.site == b.site && a.local == b.local;
}

bool Concurrent(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  return !HappensBefore(a, b) && !HappensBefore(b, a);
}

bool WeakPrecedes(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  // a < b or a ~ b, i.e. "b does not happen before a" (Prop 4.2(9)).
  return !HappensBefore(b, a);
}

PrimitiveRelation Classify(const PrimitiveTimestamp& a,
                           const PrimitiveTimestamp& b) {
  if (HappensBefore(a, b)) return PrimitiveRelation::kBefore;
  if (HappensBefore(b, a)) return PrimitiveRelation::kAfter;
  if (Simultaneous(a, b)) return PrimitiveRelation::kSimultaneous;
  return PrimitiveRelation::kConcurrent;
}

}  // namespace sentineld
