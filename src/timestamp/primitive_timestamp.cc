#include "timestamp/primitive_timestamp.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "util/string_util.h"

namespace sentineld {
namespace {

/// Lexicographic compare of the HLC (physical, logical) pair.
int HlcCompare(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  if (a.global != b.global) return a.global < b.global ? -1 : 1;
  if (a.logical != b.logical) return a.logical < b.logical ? -1 : 1;
  return 0;
}

/// Componentwise dominance over the vector frontier: -1 if a < b, 1 if
/// b < a, 0 if equal or incomparable (both are "not before" outcomes).
int VectorCompare(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  const uint32_t n = std::max<uint32_t>(a.vec_size, b.vec_size);
  bool a_below = false;  // some component of a strictly below b's
  bool b_below = false;
  for (uint32_t i = 0; i < n; ++i) {
    const int64_t va = a.VecAt(i);
    const int64_t vb = b.VecAt(i);
    if (va < vb) a_below = true;
    if (vb < va) b_below = true;
  }
  if (a_below && !b_below) return -1;
  if (b_below && !a_below) return 1;
  return 0;
}

bool VectorEqual(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  const uint32_t n = std::max<uint32_t>(a.vec_size, b.vec_size);
  for (uint32_t i = 0; i < n; ++i) {
    if (a.VecAt(i) != b.VecAt(i)) return false;
  }
  return true;
}

}  // namespace

const char* StampRepToString(StampRep rep) {
  switch (rep) {
    case StampRep::kApproxGlobal:
      return "approx";
    case StampRep::kHlc:
      return "hlc";
    case StampRep::kVector:
      return "vector";
  }
  return "?";
}

std::string PrimitiveTimestamp::ToString() const {
  switch (rep) {
    case StampRep::kApproxGlobal:
      return StrCat("(", site, ", ", global, ", ", local, ")");
    case StampRep::kHlc:
      return StrCat("(", site, ", hlc:", global, ".", logical, ", ", local,
                    ")");
    case StampRep::kVector: {
      std::vector<std::string> parts;
      parts.reserve(vec_size);
      for (uint8_t i = 0; i < vec_size; ++i) {
        parts.push_back(StrCat(vec[i]));
      }
      return StrCat("(", site, ", vec:[", Join(parts, ","), "], ", local,
                    ")");
    }
  }
  return "(?)";
}

std::ostream& operator<<(std::ostream& os, const PrimitiveTimestamp& t) {
  return os << t.ToString();
}

bool CanonicalLess(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  // A strict total order whose equivalence is structural equality: the
  // legacy (site, global, local) key first (so approx-global sorting is
  // unchanged), then the backend extension fields as tiebreaks.
  if (std::tie(a.site, a.global, a.local) !=
      std::tie(b.site, b.global, b.local)) {
    return std::tie(a.site, a.global, a.local) <
           std::tie(b.site, b.global, b.local);
  }
  if (std::tie(a.rep, a.logical, a.vec_size) !=
      std::tie(b.rep, b.logical, b.vec_size)) {
    return std::tie(a.rep, a.logical, a.vec_size) <
           std::tie(b.rep, b.logical, b.vec_size);
  }
  return std::lexicographical_compare(a.vec, a.vec + a.vec_size, b.vec,
                                      b.vec + b.vec_size);
}

const char* PrimitiveRelationToString(PrimitiveRelation r) {
  switch (r) {
    case PrimitiveRelation::kBefore:
      return "<";
    case PrimitiveRelation::kAfter:
      return ">";
    case PrimitiveRelation::kSimultaneous:
      return "=";
    case PrimitiveRelation::kConcurrent:
      return "~";
  }
  return "?";
}

bool HappensBefore(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  if (a.rep != b.rep) {
    // Mixed backends share no cross-site scale; only the same-site
    // physical order survives (see header).
    return a.site == b.site && a.local < b.local;
  }
  switch (a.rep) {
    case StampRep::kApproxGlobal:
      if (a.site == b.site) return a.local < b.local;
      return a.global < b.global - 1;
    case StampRep::kHlc:
      return HlcCompare(a, b) < 0;
    case StampRep::kVector:
      return VectorCompare(a, b) < 0;
  }
  return false;
}

bool Simultaneous(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  if (a.site != b.site) return false;
  if (a.rep != b.rep) return a.local == b.local;
  switch (a.rep) {
    case StampRep::kApproxGlobal:
      return a.local == b.local;
    case StampRep::kHlc:
      return HlcCompare(a, b) == 0;
    case StampRep::kVector:
      return VectorEqual(a, b);
  }
  return false;
}

bool Concurrent(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  return !HappensBefore(a, b) && !HappensBefore(b, a);
}

bool WeakPrecedes(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  // a < b or a ~ b, i.e. "b does not happen before a" (Prop 4.2(9)).
  return !HappensBefore(b, a);
}

PrimitiveRelation Classify(const PrimitiveTimestamp& a,
                           const PrimitiveTimestamp& b) {
  if (HappensBefore(a, b)) return PrimitiveRelation::kBefore;
  if (HappensBefore(b, a)) return PrimitiveRelation::kAfter;
  if (Simultaneous(a, b)) return PrimitiveRelation::kSimultaneous;
  return PrimitiveRelation::kConcurrent;
}

}  // namespace sentineld
