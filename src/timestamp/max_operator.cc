#include "timestamp/max_operator.h"

#include "util/logging.h"
#include "util/small_vector.h"

namespace sentineld {
namespace {

/// Scratch space for gathered stamps: joins see at most |T(a)| + |T(b)|
/// candidates, which stays inline for every pair of realistic antichains.
using ScratchVec = SmallVector<PrimitiveTimestamp, 8>;

/// max(T(a) ∪ T(b)) computed directly from Def 5.1.
CompositeTimestamp MaxOfConcatenated(const CompositeTimestamp& a,
                                     const CompositeTimestamp& b) {
  ScratchVec all;
  all.append(a.stamps().begin(), a.stamps().end());
  all.append(b.stamps().begin(), b.stamps().end());
  return CompositeTimestamp::MaxOf({all.data(), all.size()});
}

}  // namespace

CompositeTimestamp JoinConcurrent(const CompositeTimestamp& a,
                                  const CompositeTimestamp& b) {
  CHECK(Concurrent(a, b));
  // All elements are pairwise concurrent across the two sets, so every
  // element is a maximum of the union: the join is the plain set union.
  return MaxOfConcatenated(a, b);
}

CompositeTimestamp JoinIncomparable(const CompositeTimestamp& a,
                                    const CompositeTimestamp& b) {
  CHECK(Incomparable(a, b));
  ScratchVec kept;
  for (const PrimitiveTimestamp& t : a.stamps()) {
    bool dominated = false;
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (HappensBefore(t, t2)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(t);
  }
  for (const PrimitiveTimestamp& t : b.stamps()) {
    bool dominated = false;
    for (const PrimitiveTimestamp& t1 : a.stamps()) {
      if (HappensBefore(t, t1)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(t);
  }
  // Within a side, elements are pairwise concurrent, so domination can
  // only come from the opposite side; the survivors are exactly the
  // maxima of the union. MaxOf re-canonicalizes (and, defensively,
  // re-checks maximality).
  return CompositeTimestamp::MaxOf({kept.data(), kept.size()});
}

CompositeTimestamp Max(const CompositeTimestamp& a,
                       const CompositeTimestamp& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return MaxOfConcatenated(a, b);
}

CompositeTimestamp MaxCaseSplit(const CompositeTimestamp& a,
                                const CompositeTimestamp& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (Before(b, a)) return a;
  if (Before(a, b)) return b;
  if (Concurrent(a, b)) return JoinConcurrent(a, b);
  return JoinIncomparable(a, b);
}

CompositeTimestamp MaxAll(std::span<const CompositeTimestamp> stamps) {
  CompositeTimestamp acc;
  for (const CompositeTimestamp& t : stamps) acc = Max(acc, t);
  return acc;
}

CompositeTimestamp MinAll(std::span<const CompositeTimestamp> stamps) {
  ScratchVec all;
  for (const CompositeTimestamp& t : stamps) {
    all.append(t.stamps().begin(), t.stamps().end());
  }
  return CompositeTimestamp::MinOf({all.data(), all.size()});
}

}  // namespace sentineld
