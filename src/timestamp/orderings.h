#ifndef SENTINELD_TIMESTAMP_ORDERINGS_H_
#define SENTINELD_TIMESTAMP_ORDERINGS_H_

#include <string>
#include <vector>

#include "timestamp/composite_timestamp.h"

namespace sentineld {

/// The candidate composite-timestamp orderings analysed in paper Sec. 5.1.
/// The paper derives, by quantifier analysis of the transitivity
/// requirement, that the forall-exists forms `<_p` (Before(), chosen by
/// the paper and implemented in composite_timestamp.h) and its dual `<_g`
/// are the only two least-restricted valid strict orders; the others below
/// are either invalid (non-transitive) or valid but more restricted. They
/// exist in the library solely so tests and benches can reproduce that
/// analysis quantitatively.

/// `<_p1`: (∃t1 ∈ T(a), ∃t2 ∈ T(b)) t1 < t2.
/// INVALID as an ordering: irreflexive on valid composite stamps but NOT
/// transitive (the paper's quantifier argument; bench/cex_transitivity
/// finds concrete violations by search).
bool BeforeExistsExists(const CompositeTimestamp& a,
                        const CompositeTimestamp& b);

/// `<_p2`: (∀t1 ∈ T(a), ∀t2 ∈ T(b)) t1 < t2.
/// Valid (strict partial order) but strictly more restricted than `<_p`:
/// the paper's example T(a)={(s1,8,80),(s2,7,70)}, T(b)={(s3,9,90)}
/// satisfies `<_p` but not `<_p2`.
bool BeforeForallForall(const CompositeTimestamp& a,
                        const CompositeTimestamp& b);

/// `<_p3`: min <_p2-style ordering through the minimum-global element:
/// with m = the element of T(a) of minimum global time,
/// (∀t2 ∈ T(b)) m < t2.
/// Valid but more restricted than `<_p`: the paper's example
/// T(a)={(s1,8,80),(s2,7,70)}, T(b)={(s1,8,81),(s2,7,71)} satisfies `<_p`
/// but not `<_p3`. Ties on minimum global time are broken canonically.
bool BeforeMinDominates(const CompositeTimestamp& a,
                        const CompositeTimestamp& b);

/// `<_g`: (∀t1 ∈ T(a), ∃t2 ∈ T(b)) t1 < t2 — the dual least-restricted
/// valid ordering (the paper picks `<_p`; `<_g` pairs with `>_p` as the
/// other dual pair).
bool BeforeG(const CompositeTimestamp& a, const CompositeTimestamp& b);

/// A named composite ordering predicate, for table-driven experiments.
struct NamedOrdering {
  std::string name;
  bool (*before)(const CompositeTimestamp&, const CompositeTimestamp&);
  bool claimed_transitive;  ///< the paper's claim for this ordering
};

/// All orderings of Sec. 5.1 (including the paper's `<_p` itself), in
/// presentation order: `<_p`, `<_g`, `<_p1`, `<_p2`, `<_p3`.
const std::vector<NamedOrdering>& AllOrderings();

}  // namespace sentineld

#endif  // SENTINELD_TIMESTAMP_ORDERINGS_H_
