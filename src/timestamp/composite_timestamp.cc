#include "timestamp/composite_timestamp.h"

#include <algorithm>

#include "util/checked.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

/// Sorts canonically and removes structural duplicates (works on both
/// StampVec and the std::vector FromMaximalSet accepts).
template <typename Container>
void Canonicalize(Container& stamps) {
  std::sort(stamps.begin(), stamps.end(), CanonicalLess);
  stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());
}

/// Raw Def 5.3 forall-exists test, shared by Before and its checked-build
/// self-checks (which must not recurse through the checking wrapper).
bool BeforeImpl(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  for (const PrimitiveTimestamp& t2 : b.stamps()) {
    bool found = false;
    for (const PrimitiveTimestamp& t1 : a.stamps()) {
      if (HappensBefore(t1, t2)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

CompositeTimestamp CompositeTimestamp::FromSingle(
    const PrimitiveTimestamp& t) {
  return CompositeTimestamp({t});
}

CompositeTimestamp CompositeTimestamp::MaxOf(
    std::span<const PrimitiveTimestamp> set) {
  StampVec maxima;
  for (const PrimitiveTimestamp& t : set) {
    // Def 5.1 (prose form): t is a maximum iff no t1 in ST with t < t1.
    bool dominated = false;
    for (const PrimitiveTimestamp& t1 : set) {
      if (HappensBefore(t, t1)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maxima.push_back(t);
  }
  Canonicalize(maxima);
  CompositeTimestamp result(std::move(maxima));
  // Thm 5.1: the maxima of any timestamp set are pairwise concurrent;
  // IsValid also re-checks the canonical Def 5.1/5.2 max-set form.
  SENTINELD_ASSERT(result.IsValid());
  return result;
}

CompositeTimestamp CompositeTimestamp::MaxOf(
    std::initializer_list<PrimitiveTimestamp> set) {
  return MaxOf(std::span<const PrimitiveTimestamp>(set.begin(), set.size()));
}

CompositeTimestamp CompositeTimestamp::MinOf(
    std::span<const PrimitiveTimestamp> set) {
  StampVec minima;
  for (const PrimitiveTimestamp& t : set) {
    bool dominated = false;
    for (const PrimitiveTimestamp& t1 : set) {
      if (HappensBefore(t1, t)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minima.push_back(t);
  }
  Canonicalize(minima);
  CompositeTimestamp result(std::move(minima));
  // The minima of any set are pairwise concurrent by the dual of Thm 5.1.
  SENTINELD_ASSERT(result.IsValid());
  return result;
}

CompositeTimestamp CompositeTimestamp::MinOf(
    std::initializer_list<PrimitiveTimestamp> set) {
  return MinOf(std::span<const PrimitiveTimestamp>(set.begin(), set.size()));
}

Result<CompositeTimestamp> CompositeTimestamp::FromMaximalSet(
    std::vector<PrimitiveTimestamp> stamps) {
  Canonicalize(stamps);
  for (size_t i = 0; i < stamps.size(); ++i) {
    for (size_t j = i + 1; j < stamps.size(); ++j) {
      if (!sentineld::Concurrent(stamps[i], stamps[j])) {
        return Status::InvalidArgument(
            StrCat("timestamps not pairwise concurrent: ",
                   stamps[i].ToString(), " vs ", stamps[j].ToString()));
      }
    }
  }
  return CompositeTimestamp(StampVec(stamps.begin(), stamps.end()));
}

bool CompositeTimestamp::IsValid() const {
  for (size_t i = 0; i < stamps_.size(); ++i) {
    if (i + 1 < stamps_.size() &&
        !CanonicalLess(stamps_[i], stamps_[i + 1])) {
      return false;  // not strictly canonically sorted (or duplicate)
    }
    for (size_t j = i + 1; j < stamps_.size(); ++j) {
      if (!sentineld::Concurrent(stamps_[i], stamps_[j])) return false;
    }
  }
  return true;
}

std::string CompositeTimestamp::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(stamps_.size());
  for (const auto& t : stamps_) parts.push_back(t.ToString());
  return StrCat("{", Join(parts, ", "), "}");
}

std::ostream& operator<<(std::ostream& os, const CompositeTimestamp& t) {
  return os << t.ToString();
}

const char* CompositeRelationToString(CompositeRelation r) {
  switch (r) {
    case CompositeRelation::kBefore:
      return "<";
    case CompositeRelation::kAfter:
      return ">";
    case CompositeRelation::kConcurrent:
      return "~";
    case CompositeRelation::kIncomparable:
      return "incomparable";
  }
  return "?";
}

bool Before(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  const bool result = BeforeImpl(a, b);
#if SENTINELD_CHECKED_ENABLED
  // The operands must be genuine composite timestamps (Thm 5.1
  // antichains), and on those Def 5.3's `<` is a strict order:
  // irreflexive and antisymmetric on every pair actually compared.
  SENTINELD_ASSERT(a.IsValid() && b.IsValid());
  SENTINELD_ASSERT(!BeforeImpl(a, a) && !BeforeImpl(b, b));
  SENTINELD_ASSERT(!(result && BeforeImpl(b, a)));
#endif
  return result;
}

bool Concurrent(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (!Concurrent(t1, t2)) return false;
    }
  }
  return true;
}

bool Incomparable(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  return !Before(a, b) && !Before(b, a) && !Concurrent(a, b);
}

bool WeakPrecedes(const CompositeTimestamp& a, const CompositeTimestamp& b) {
  CHECK(!a.empty() && !b.empty());
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (!WeakPrecedes(t1, t2)) return false;
    }
  }
  return true;
}

CompositeRelation Classify(const CompositeTimestamp& a,
                           const CompositeTimestamp& b) {
  if (Before(a, b)) return CompositeRelation::kBefore;
  if (Before(b, a)) return CompositeRelation::kAfter;
  if (Concurrent(a, b)) return CompositeRelation::kConcurrent;
  return CompositeRelation::kIncomparable;
}

}  // namespace sentineld
