#include "timestamp/schwiderski.h"

#include <algorithm>

#include "util/string_util.h"

namespace sentineld::schwiderski {

Timestamp::Timestamp(std::vector<PrimitiveTimestamp> stamps)
    : stamps_(std::move(stamps)) {
  std::sort(stamps_.begin(), stamps_.end(), CanonicalLess);
  stamps_.erase(std::unique(stamps_.begin(), stamps_.end()), stamps_.end());
}

std::string Timestamp::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(stamps_.size());
  for (const auto& t : stamps_) parts.push_back(t.ToString());
  return StrCat("{", sentineld::Join(parts, ", "), "}");
}

bool Before(const Timestamp& a, const Timestamp& b) {
  for (const PrimitiveTimestamp& t1 : a.stamps()) {
    for (const PrimitiveTimestamp& t2 : b.stamps()) {
      if (HappensBefore(t1, t2)) return true;
    }
  }
  return false;
}

bool Concurrent(const Timestamp& a, const Timestamp& b) {
  return !Before(a, b) && !Before(b, a);
}

Timestamp Join(const Timestamp& a, const Timestamp& b) {
  std::vector<PrimitiveTimestamp> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.stamps().begin(), a.stamps().end());
  all.insert(all.end(), b.stamps().begin(), b.stamps().end());
  return Timestamp(std::move(all));
}

}  // namespace sentineld::schwiderski
