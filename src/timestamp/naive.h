#ifndef SENTINELD_TIMESTAMP_NAIVE_H_
#define SENTINELD_TIMESTAMP_NAIVE_H_

#include "timestamp/primitive_timestamp.h"

namespace sentineld::naive {

/// Strawman baseline: pretend the synchronized local calendar ticks form
/// a global TOTAL order — i.e. compare local ticks across sites directly
/// and ignore the synchronization error Pi entirely. This is what a
/// system gets by "just using the timestamps": it orders essentially
/// every pair of events (total comparability), but within any window of
/// Pi real time the asserted order is arbitrary, so it fabricates
/// happen-before relations that contradict real time. The paper's
/// 2g_g-restricted order trades a sliver of comparability (the ~ band)
/// for soundness; bench/cmp_naive quantifies both sides of that trade.
///
/// Ties (equal local ticks at different sites) break by site id so the
/// relation is a strict total order on distinct stamps.
bool HappensBefore(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// No two distinct stamps are concurrent under the naive order (other
/// than exact equality).
bool Concurrent(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

}  // namespace sentineld::naive

#endif  // SENTINELD_TIMESTAMP_NAIVE_H_
