#ifndef SENTINELD_TIMESTAMP_PRIMITIVE_TIMESTAMP_H_
#define SENTINELD_TIMESTAMP_PRIMITIVE_TIMESTAMP_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace sentineld {

/// Identifier of a site (node) in the distributed system.
using SiteId = uint32_t;

/// Local time: the reading of a site's physical clock expressed in ticks of
/// the local clock granularity `g` since the calendar epoch. Local clocks
/// are synchronized to precision Pi, so local ticks of different sites are
/// approximately (within Pi) aligned calendar times, but are only *exactly*
/// comparable within one site (paper Sec. 4.1).
using LocalTicks = int64_t;

/// Global time: the local calendar time truncated to the global granularity
/// `g_g` (paper Def 4.3, `g_k(l_k) = TRUNC_gg(clock_k(l_k))`). Choosing
/// `g_g > Pi` guarantees that two simultaneous events receive global times
/// at most one global tick apart, which is what makes the `2g_g`-restricted
/// order (Def 4.4) sound.
using GlobalTicks = int64_t;

/// Timestamp of a global primitive event (paper Def 4.6): the triple
/// `(site, global, local)`.
///
/// This is a plain value type; all temporal relations over it are free
/// functions below. `operator==` is structural triple equality and is NOT
/// the paper's "simultaneous" relation `=` (Def 4.7(2)), which only
/// compares `site` and `local` — use Simultaneous() for the latter.
struct PrimitiveTimestamp {
  SiteId site = 0;
  GlobalTicks global = 0;
  LocalTicks local = 0;

  /// Renders "(site, global, local)", matching the paper's notation.
  std::string ToString() const;

  friend bool operator==(const PrimitiveTimestamp&,
                         const PrimitiveTimestamp&) = default;
};

std::ostream& operator<<(std::ostream& os, const PrimitiveTimestamp& t);

/// Total order used ONLY for canonical storage (sorting/dedup inside
/// composite timestamps); it has no temporal meaning.
bool CanonicalLess(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// The mutually exclusive outcomes of comparing two primitive timestamps
/// under Def 4.7. Exactly one of kBefore / kAfter / kConcurrent holds for
/// any pair (Prop 4.2(3)); kSimultaneous is the same-site special case of
/// concurrency (Prop 4.2(5)) and is reported in preference to kConcurrent.
enum class PrimitiveRelation {
  kBefore,        ///< T(a) <  T(b)
  kAfter,         ///< T(b) <  T(a)
  kSimultaneous,  ///< T(a) =  T(b)  (same site, same local tick)
  kConcurrent,    ///< T(a) ~  T(b)  and not simultaneous
};

const char* PrimitiveRelationToString(PrimitiveRelation r);

/// Happen-before `<` (paper Def 4.7(1), with the evident `site !=` typo in
/// the first disjunct corrected to `site ==` per Def 4.4):
///
///   T(a) < T(b)  iff  (a.site == b.site && a.local < b.local)
///                 ||  (a.site != b.site && a.global < b.global - 1)
///
/// The cross-site case is the `2g_g`-restricted temporal order: a full
/// global tick of slack absorbs the synchronization error `Pi < g_g`.
/// Irreflexive and transitive (Theorem 4.1), hence a strict partial order.
bool HappensBefore(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Simultaneity `=` (Def 4.7(2)): same site and same local tick. An
/// equivalence relation.
bool Simultaneous(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Concurrency `~` (Def 4.7(3)): neither happens before the other. NOT
/// transitive (Prop 4.2(6)), hence not an equivalence relation.
bool Concurrent(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Weakened less-than-or-equal `⪯` (Def 4.8): `a < b or a ~ b`. Defined
/// with `~` rather than `=` so that ANY two primitive timestamps are
/// comparable by `⪯` in at least one direction (Prop 4.2(4)). Not
/// transitive (inherits `~`'s non-transitivity), so not a partial order.
bool WeakPrecedes(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Classifies the pair into its unique PrimitiveRelation.
PrimitiveRelation Classify(const PrimitiveTimestamp& a,
                           const PrimitiveTimestamp& b);

/// Hash functor so primitive timestamps can key unordered containers.
struct PrimitiveTimestampHash {
  size_t operator()(const PrimitiveTimestamp& t) const {
    // Mix the three fields with distinct odd multipliers (64-bit FNV-ish).
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.site);
    mix(static_cast<uint64_t>(t.global));
    mix(static_cast<uint64_t>(t.local));
    return static_cast<size_t>(h);
  }
};

}  // namespace sentineld

#endif  // SENTINELD_TIMESTAMP_PRIMITIVE_TIMESTAMP_H_
