#ifndef SENTINELD_TIMESTAMP_PRIMITIVE_TIMESTAMP_H_
#define SENTINELD_TIMESTAMP_PRIMITIVE_TIMESTAMP_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace sentineld {

/// Identifier of a site (node) in the distributed system.
using SiteId = uint32_t;

/// Local time: the reading of a site's physical clock expressed in ticks of
/// the local clock granularity `g` since the calendar epoch. Local clocks
/// are synchronized to precision Pi, so local ticks of different sites are
/// approximately (within Pi) aligned calendar times, but are only *exactly*
/// comparable within one site (paper Sec. 4.1).
using LocalTicks = int64_t;

/// Global time: the local calendar time truncated to the global granularity
/// `g_g` (paper Def 4.3, `g_k(l_k) = TRUNC_gg(clock_k(l_k))`). Choosing
/// `g_g > Pi` guarantees that two simultaneous events receive global times
/// at most one global tick apart, which is what makes the `2g_g`-restricted
/// order (Def 4.4) sound.
using GlobalTicks = int64_t;

/// Which time-base backend produced a stamp — the discriminator of the
/// pluggable ordering stack (timebase/timebase.h, docs/timebase.md). The
/// numeric values are pinned: they travel on the wire (dist/codec.h
/// primitive-v2 payload) and in checkpoints.
enum class StampRep : uint8_t {
  /// The paper's approximated-global-time triple (Def 4.6): `global` is
  /// the TRUNC_gg projection of `local`, and cross-site order is the
  /// `2g_g`-restricted order (Def 4.4). Requires clocks synchronized to
  /// precision Pi < g_g.
  kApproxGlobal = 0,
  /// Hybrid logical clock (Kulkarni et al. style): `global` carries the
  /// HLC physical component (in local ticks), `logical` the logical
  /// counter. Order is lexicographic on (physical, logical) — a total
  /// preorder consistent with causality, needing no clock sync.
  kHlc = 1,
  /// Vector clock (Mattern style, with local-tick components): `vec`
  /// carries the site's known local-tick frontier per site. Order is
  /// componentwise dominance — exactly causal order; causally unrelated
  /// cross-site events are concurrent.
  kVector = 2,
};

const char* StampRepToString(StampRep rep);

/// Vector-clock stamps carry one component per site inline (keeping the
/// stamp trivially copyable and the hot path allocation-free); the
/// kVector backend therefore supports at most this many sites.
inline constexpr uint32_t kMaxVectorSites = 8;

/// Timestamp of a global primitive event. Under the paper's
/// approximated-global-time backend this is exactly the Def 4.6 triple
/// `(site, global, local)`; the pluggable timebase backends
/// (docs/timebase.md) reuse the same carrier with `rep` discriminating
/// how the ordering relations below read it:
///
///   rep            site     global               local          extra
///   kApproxGlobal  origin   TRUNC_gg(local)      physical tick  —
///   kHlc           origin   HLC physical (ticks) physical tick  logical
///   kVector        origin   own vec component    physical tick  vec[]
///
/// `local` is ALWAYS the originating site's physical local-clock reading:
/// it is the Sequencer's stability/release anchor (dist/sequencer.h) and
/// the same-site total order, whatever the backend.
///
/// This is a plain (trivially copyable) value type; all temporal
/// relations over it are free functions below. `operator==` is structural
/// equality and is NOT the backend's "simultaneous"/indistinguishable
/// relation — use Simultaneous() for the latter.
struct PrimitiveTimestamp {
  SiteId site = 0;
  GlobalTicks global = 0;
  LocalTicks local = 0;
  /// HLC logical component (kHlc only; 0 otherwise).
  uint32_t logical = 0;
  StampRep rep = StampRep::kApproxGlobal;
  /// Number of valid `vec` entries (kVector only; 0 otherwise). Entries
  /// at or beyond vec_size compare as 0 ("nothing known of that site").
  uint8_t vec_size = 0;
  /// kVector: known local-tick frontier per site (vec[site] == local for
  /// stamps produced by the vector backend).
  int64_t vec[kMaxVectorSites] = {};

  /// The i-th vector component, with unknown sites reading as 0.
  int64_t VecAt(uint32_t i) const {
    return i < vec_size ? vec[i] : 0;
  }

  /// Renders "(site, global, local)" for approx-global stamps (the
  /// paper's notation, unchanged), "(site, hlc:pt.c, local)" for HLC and
  /// "(site, vec:[..], local)" for vector stamps.
  std::string ToString() const;

  friend bool operator==(const PrimitiveTimestamp&,
                         const PrimitiveTimestamp&) = default;
};

std::ostream& operator<<(std::ostream& os, const PrimitiveTimestamp& t);

/// Total order used ONLY for canonical storage (sorting/dedup inside
/// composite timestamps); it has no temporal meaning.
bool CanonicalLess(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// The mutually exclusive outcomes of comparing two primitive timestamps
/// under Def 4.7. Exactly one of kBefore / kAfter / kConcurrent holds for
/// any pair (Prop 4.2(3)); kSimultaneous is the same-site special case of
/// concurrency (Prop 4.2(5)) and is reported in preference to kConcurrent.
enum class PrimitiveRelation {
  kBefore,        ///< T(a) <  T(b)
  kAfter,         ///< T(b) <  T(a)
  kSimultaneous,  ///< T(a) =  T(b)  (same site, same local tick)
  kConcurrent,    ///< T(a) ~  T(b)  and not simultaneous
};

const char* PrimitiveRelationToString(PrimitiveRelation r);

/// Happen-before `<`, dispatched on the operands' backend rep
/// (docs/timebase.md has the full matrix):
///
///  * kApproxGlobal (paper Def 4.7(1), with the evident `site !=` typo in
///    the first disjunct corrected to `site ==` per Def 4.4):
///
///      T(a) < T(b)  iff  (a.site == b.site && a.local < b.local)
///                    ||  (a.site != b.site && a.global < b.global - 1)
///
///    The cross-site case is the `2g_g`-restricted temporal order: a full
///    global tick of slack absorbs the synchronization error `Pi < g_g`.
///
///  * kHlc: lexicographic (global, logical) — the HLC order, a linear
///    extension of causality. Same-site stamps agree with `local` order
///    for model-consistent stamps (per-site HLC is strictly monotone).
///
///  * kVector: componentwise dominance — `a < b` iff every component of
///    a's vector is <= b's and some component is strictly smaller. This
///    is EXACTLY causal order: causally unrelated events are concurrent,
///    however far apart their wall-clock times (the `<_p1`-style
///    precision caveat SL016 lints for).
///
/// Mixed-rep pairs (a misconfigured deployment, or legacy frames decoded
/// into a logical-clock deployment) degrade soundly: same-site pairs
/// compare by `local`, cross-site pairs are concurrent (no shared scale
/// exists to order them).
///
/// Irreflexive and transitive under every rep (Theorem 4.1 for
/// kApproxGlobal; lexicographic / product order for the logical reps),
/// hence a strict partial order — property-tested per backend in
/// tests/ordering_laws_test.cc.
bool HappensBefore(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Simultaneity `=`: the backend's "indistinguishable" relation — an
/// equivalence, and a sub-relation of Concurrent. kApproxGlobal: same
/// site and same local tick (Def 4.7(2)). kHlc: same site and same
/// (physical, logical). kVector: same site and equal vectors.
bool Simultaneous(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Concurrency `~` (Def 4.7(3)): neither happens before the other. NOT
/// transitive (Prop 4.2(6)), hence not an equivalence relation.
bool Concurrent(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Weakened less-than-or-equal `⪯` (Def 4.8): `a < b or a ~ b`. Defined
/// with `~` rather than `=` so that ANY two primitive timestamps are
/// comparable by `⪯` in at least one direction (Prop 4.2(4)). Not
/// transitive (inherits `~`'s non-transitivity), so not a partial order.
bool WeakPrecedes(const PrimitiveTimestamp& a, const PrimitiveTimestamp& b);

/// Classifies the pair into its unique PrimitiveRelation.
PrimitiveRelation Classify(const PrimitiveTimestamp& a,
                           const PrimitiveTimestamp& b);

/// Hash functor so primitive timestamps can key unordered containers.
struct PrimitiveTimestampHash {
  size_t operator()(const PrimitiveTimestamp& t) const {
    // Mix the fields with distinct odd multipliers (64-bit FNV-ish).
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.site);
    mix(static_cast<uint64_t>(t.global));
    mix(static_cast<uint64_t>(t.local));
    mix((static_cast<uint64_t>(t.rep) << 32) | t.logical);
    for (uint8_t i = 0; i < t.vec_size; ++i) {
      mix(static_cast<uint64_t>(t.vec[i]));
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace sentineld

#endif  // SENTINELD_TIMESTAMP_PRIMITIVE_TIMESTAMP_H_
