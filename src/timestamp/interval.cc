#include "timestamp/interval.h"

namespace sentineld {

bool InOpenInterval(const PrimitiveTimestamp& t, const PrimitiveTimestamp& a,
                    const PrimitiveTimestamp& b) {
  if (!HappensBefore(a, b)) return false;
  return HappensBefore(a, t) && HappensBefore(t, b);
}

bool InClosedInterval(const PrimitiveTimestamp& t,
                      const PrimitiveTimestamp& a,
                      const PrimitiveTimestamp& b) {
  if (!WeakPrecedes(a, b)) return false;
  return WeakPrecedes(a, t) && WeakPrecedes(t, b);
}

std::optional<GlobalTickBand> OpenIntervalGlobalBand(
    const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  if (!HappensBefore(a, b)) return std::nullopt;
  const GlobalTickBand band{a.global + 2, b.global - 2};
  if (band.first > band.last) return std::nullopt;
  return band;
}

std::optional<GlobalTickBand> ClosedIntervalGlobalBand(
    const PrimitiveTimestamp& a, const PrimitiveTimestamp& b) {
  if (!WeakPrecedes(a, b)) return std::nullopt;
  return GlobalTickBand{a.global - 1, b.global + 1};
}

bool InOpenInterval(const CompositeTimestamp& t, const CompositeTimestamp& a,
                    const CompositeTimestamp& b) {
  if (!Before(a, b)) return false;
  return Before(a, t) && Before(t, b);
}

bool InClosedInterval(const CompositeTimestamp& t,
                      const CompositeTimestamp& a,
                      const CompositeTimestamp& b) {
  if (!WeakPrecedes(a, b)) return false;
  return WeakPrecedes(a, t) && WeakPrecedes(t, b);
}

}  // namespace sentineld
