#ifndef SENTINELD_OBS_TRACE_H_
#define SENTINELD_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "event/registry.h"
#include "util/status.h"

/// Event-scoped execution tracing: a journal of each occurrence's
/// journey through the distributed pipeline — raised at its site,
/// framed onto (and possibly retransmitted over) the reliable channel,
/// sequenced at the detector site, consumed by the operator graph, and
/// finally referenced by the composite detection it contributed to.
///
/// Zero-cost-when-off: every call site in the runtime goes through
/// SENTINELD_TRACE_EVENT, which compiles to nothing (arguments are not
/// evaluated) unless the build sets -DSENTINELD_TRACE (cmake
/// -DSENTINELD_TRACE=ON) — the same gate pattern as util/checked.h.
/// The Tracer class itself is always compiled, so exporters and tools
/// work in every build; only the runtime hooks are gated.
///
/// Not to be confused with event/trace_io.h, which serializes *planned
/// workloads* for replay; this header records what the runtime *did*.
#if defined(SENTINELD_TRACE)
#define SENTINELD_TRACE_ENABLED 1
#else
#define SENTINELD_TRACE_ENABLED 0
#endif

#if SENTINELD_TRACE_ENABLED
#define SENTINELD_TRACE_EVENT(tracer, ...)               \
  do {                                                   \
    ::sentineld::Tracer* sentineld_tracer_ = (tracer);   \
    if (sentineld_tracer_ != nullptr) {                  \
      sentineld_tracer_->Record(__VA_ARGS__);            \
    }                                                    \
  } while (false)
#else
#define SENTINELD_TRACE_EVENT(tracer, ...) \
  do {                                     \
  } while (false)
#endif

namespace sentineld {

/// True in SENTINELD_TRACE builds; lets tools and tests report which
/// mode they exercised (and skip path-reconstruction assertions when
/// the runtime hooks are compiled out).
inline constexpr bool kTraceBuild = (SENTINELD_TRACE_ENABLED == 1);

/// Pipeline stages of an occurrence's journey. docs/observability.md
/// documents the phase ordering per deployment mode.
enum class TracePhase {
  kRaise,           ///< primitive occurrence stamped at its site
  kSend,            ///< payload sent on the raw (channel-off) network
  kDrop,            ///< raw payload dropped by a network fault
  kFrame,           ///< payload framed onto the reliable channel
  kRetransmit,      ///< DATA frame re-sent after a timeout
  kGiveUp,          ///< sender abandoned the payload (retransmit cap)
  kChannelDeliver,  ///< reliable channel delivered to the receiver
  kOffer,           ///< occurrence offered to a Sequencer
  kSequence,        ///< Sequencer released it in linear-extension order
  kFeed,            ///< Detector fed it into the operator graph
  kEmit,            ///< placed sub-composite emitted toward the root
  kDetect,          ///< rule-root composite occurrence fired
};

const char* TracePhaseName(TracePhase phase);

/// One journal entry. `event_id` is a Tracer-interned id stable for the
/// lifetime of the occurrence object; `refs` (kEmit/kDetect) lists the
/// interned ids of the composite's constituent primitives, which is
/// what makes a detection's full path reconstructable.
struct TraceRecord {
  int64_t ts_ns = 0;
  SiteId site = 0;
  TracePhase phase = TracePhase::kRaise;
  uint64_t event_id = 0;
  EventTypeId type = 0;
  std::string detail;
  std::vector<uint64_t> refs;
};

/// Append-only, bounded trace journal with JSONL and Chrome trace_event
/// exporters (load the latter in chrome://tracing or Perfetto).
class Tracer {
 public:
  using Clock = std::function<int64_t()>;
  using TypeNamer = std::function<std::string(EventTypeId)>;

  /// Timestamp source for Record(); the runtimes install their
  /// simulation clock. Unset, records are stamped 0.
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Resolves type ids to names at export time (e.g.
  /// EventTypeRegistry::NameOf). Unset, exports print the numeric id.
  void set_type_namer(TypeNamer namer) { namer_ = std::move(namer); }

  /// Journal size cap; once reached, further records are counted in
  /// dropped_records() and discarded. Keeps long benches bounded.
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  /// The interned id of an occurrence (assigned on first sight).
  uint64_t IdOf(const Event* event);

  /// Journals one phase of `event`'s journey. For composite occurrences
  /// the constituent primitives are collected into `refs`
  /// automatically.
  void Record(TracePhase phase, SiteId site, const EventPtr& event,
              std::string detail = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  uint64_t dropped_records() const { return dropped_records_; }
  void Clear();

  /// One JSON object per line, in journal order (the raw form; schema
  /// in docs/observability.md).
  Status WriteJsonl(const std::string& path) const;

  /// Chrome trace_event JSON: every record becomes an instant event on
  /// the lane of its site (tid = site), and every kDetect additionally
  /// becomes a duration span from its earliest constituent's kRaise to
  /// the detection — the "why was this detection late?" view.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::string TypeName(EventTypeId type) const;

  Clock clock_;
  TypeNamer namer_;
  size_t capacity_ = 1 << 20;
  std::vector<TraceRecord> records_;
  /// Keyed by Event::uid(): arena blocks are recycled, so raw
  /// addresses alias across occurrence lifetimes.
  std::unordered_map<uint64_t, uint64_t> ids_;
  uint64_t next_id_ = 1;
  uint64_t dropped_records_ = 0;
};

}  // namespace sentineld

#endif  // SENTINELD_OBS_TRACE_H_
