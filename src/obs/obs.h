#ifndef SENTINELD_OBS_OBS_H_
#define SENTINELD_OBS_OBS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace sentineld {

/// The observability attachment point: one hub bundles the metrics
/// registry, the execution tracer, and the retained periodic snapshots
/// for one deployment. Construct a hub, point RuntimeConfig::obs (or
/// SentinelService::Options::obs) at it, run, then export — the hub
/// must outlive every runtime wired to it. Ownership stays with the
/// caller so one hub can span several runs (snapshots diff across
/// runs via sentinel-stat).
class ObsHub {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

  /// Samples every instrument into a retained snapshot and returns it.
  /// The runtimes call this on their heartbeat when
  /// RuntimeConfig::obs_snapshot_period_ns is set, and once at the end
  /// of every Run().
  const MetricsSnapshot& TakeSnapshot(int64_t ts_ns);

  const std::vector<MetricsSnapshot>& snapshots() const {
    return snapshots_;
  }

  /// Writes every retained snapshot as JSONL — the file sentinel-stat
  /// renders and diffs.
  Status WriteSnapshotsJsonl(const std::string& path) const;

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::vector<MetricsSnapshot> snapshots_;
};

}  // namespace sentineld

#endif  // SENTINELD_OBS_OBS_H_
