#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

/// The closed catalogue. Order is documentation order; the table in
/// docs/observability.md lists exactly these rows (enforced by
/// tests/obs_test.cc's parity test), so adding a metric means adding it
/// in both places.
constexpr std::array<MetricInfo, 31> kCatalog = {{
    {"events_injected", MetricKind::kCounter, "events", "site",
     "primitive occurrences raised at each site"},
    {"detections", MetricKind::kCounter, "events", "rule,detector_shard?",
     "composite occurrences fired per rule root"},
    {"detection_latency_ms", MetricKind::kHistogram, "ms",
     "rule,detector_shard?",
     "latest-constituent occurrence to rule firing, per rule"},
    {"sequencer_hold_ticks", MetricKind::kHistogram, "ticks", "site",
     "watermark minus min-anchor at release (stability-window lag)"},
    {"sequencer_pending", MetricKind::kGauge, "events", "site",
     "occurrences buffered awaiting stability"},
    {"sequencer_released", MetricKind::kCounter, "events", "site",
     "occurrences released in linear-extension order"},
    {"sequencer_late_arrivals", MetricKind::kCounter, "events", "site",
     "arrivals after their stability deadline (window too small)"},
    {"detector_events_fed", MetricKind::kCounter, "events",
     "site,detector_shard?",
     "occurrences delivered into the detection graph"},
    {"detector_events_dropped", MetricKind::kCounter, "events",
     "site,detector_shard?", "occurrences of types no rule listens to"},
    {"detector_timers_fired", MetricKind::kCounter, "events",
     "site,detector_shard?", "temporal-operator timer callbacks fired"},
    {"detector_state", MetricKind::kGauge, "occurrences",
     "site,op,detector_shard?",
     "occurrences buffered per operator kind (retained state)"},
    {"dag_nodes", MetricKind::kGauge, "nodes", "site",
     "detection-DAG nodes in the shared engine (primitives included)"},
    {"dag_sharing_hits", MetricKind::kCounter, "subtrees", "site",
     "rule subtrees resolved to an already-interned DAG node"},
    {"dag_dispatch_fanout", MetricKind::kGauge, "nodes", "site",
     "mean operator nodes touched per dispatched occurrence"},
    {"network_messages", MetricKind::kCounter, "messages", "",
     "messages put on the wire (drops and duplicates included)"},
    {"network_bytes", MetricKind::kCounter, "bytes", "",
     "wire-format bytes sent (dist/codec.h sizes)"},
    {"network_dropped", MetricKind::kCounter, "messages", "cause",
     "messages silently dropped, by fault cause"},
    {"net_bytes_sent", MetricKind::kCounter, "bytes", "site",
     "bytes written to peer sockets by the real transport"},
    {"net_accepted_conns", MetricKind::kCounter, "connections", "site",
     "inbound socket connections accepted by the transport listener"},
    {"net_reconnects", MetricKind::kCounter, "connections", "site",
     "re-dials of a peer after an established connection was lost"},
    {"net_lossy_drops", MetricKind::kCounter, "frames", "site",
     "frames dropped by the transport's lossy-loopback fault injection"},
    {"channel_retransmits", MetricKind::kCounter, "frames", "site",
     "DATA frames re-sent after a timeout, per sender site"},
    {"channel_gave_up", MetricKind::kCounter, "payloads", "site",
     "payloads abandoned after the retransmit cap, per sender site"},
    {"channel_duplicates_dropped", MetricKind::kCounter, "frames", "site",
     "frames deduplicated by sequence number, per sender site"},
    {"channel_unacked", MetricKind::kGauge, "payloads", "site",
     "payloads awaiting acknowledgement, per sender site"},
    {"watermark_gap_flags", MetricKind::kCounter, "flags", "",
     "watermark advances past a known receive-side sequence gap"},
    {"completeness", MetricKind::kGauge, "fraction", "",
     "pessimistic incremental completeness: 1 - known lost / planned"},
    {"recovery_replayed_events", MetricKind::kCounter, "records", "site",
     "journal records replayed during site restarts"},
    {"recovery_checkpoint_bytes", MetricKind::kGauge, "bytes", "site",
     "serialized size of the latest checkpoint taken at each site"},
    {"recovery_rejoin_ticks", MetricKind::kHistogram, "ticks", "site",
     "local-clock gap the detector closes when its site rejoins"},
    {"journal_fsync_bytes", MetricKind::kHistogram, "bytes", "site",
     "bytes made durable per journal fsync batch"},
}};

/// The keys of a "k1=v1,k2=v2" label list, in order.
std::vector<std::string> LabelKeys(const std::string& labels) {
  std::vector<std::string> keys;
  if (labels.empty()) return keys;
  for (const std::string& part : Split(labels, ',')) {
    const size_t eq = part.find('=');
    keys.push_back(eq == std::string::npos ? part : part.substr(0, eq));
  }
  return keys;
}

/// True when the provided label keys satisfy the catalogue `spec`: keys
/// must appear in catalogue order, and a trailing '?' marks a key the
/// caller may omit (how the detector_shard label stays optional without
/// opening the closed catalogue).
bool LabelKeysMatch(const std::vector<std::string>& provided,
                    const char* spec) {
  size_t i = 0;
  for (const std::string& want : Split(spec, ',')) {
    if (want.empty()) continue;  // unlabeled spec ""
    const bool optional = want.back() == '?';
    const std::string key =
        optional ? want.substr(0, want.size() - 1) : want;
    if (i < provided.size() && provided[i] == key) {
      ++i;
      continue;
    }
    if (!optional) return false;
  }
  return i == provided.size();
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::span<const MetricInfo> MetricCatalog() { return kCatalog; }

const MetricInfo* FindMetric(std::string_view name) {
  for (const MetricInfo& info : kCatalog) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const SnapshotRow* MetricsSnapshot::Find(std::string_view name,
                                         std::string_view labels) const {
  for (const SnapshotRow& row : rows) {
    if (row.name == name && row.labels == labels) return &row;
  }
  return nullptr;
}

const MetricInfo& MetricsRegistry::Resolve(std::string_view name,
                                           MetricKind kind,
                                           const std::string& labels) const {
  const MetricInfo* info = FindMetric(name);
  CHECK(info != nullptr);
  CHECK(info->kind == kind);
  CHECK(LabelKeysMatch(LabelKeys(labels), info->labels));
  return *info;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string labels) {
  Resolve(name, MetricKind::kCounter, labels);
  return &counters_[Key{std::string(name), std::move(labels)}];
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string labels) {
  Resolve(name, MetricKind::kGauge, labels);
  return &gauges_[Key{std::string(name), std::move(labels)}];
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string labels) {
  Resolve(name, MetricKind::kHistogram, labels);
  return &histograms_[Key{std::string(name), std::move(labels)}];
}

MetricsSnapshot MetricsRegistry::Snapshot(int64_t ts_ns) const {
  MetricsSnapshot snapshot;
  snapshot.ts_ns = ts_ns;
  // Catalogue order first, then label order within one metric, so rows
  // render and diff stably.
  for (const MetricInfo& info : kCatalog) {
    auto emit = [&](const Key& key, const auto& instrument) {
      if (key.first != info.name) return;
      SnapshotRow row;
      row.name = key.first;
      row.labels = key.second;
      row.kind = info.kind;
      row.unit = info.unit;
      using T = std::decay_t<decltype(instrument)>;
      if constexpr (std::is_same_v<T, Counter>) {
        row.value = static_cast<double>(instrument.value());
      } else if constexpr (std::is_same_v<T, Gauge>) {
        row.value = instrument.value();
      } else {
        row.value = static_cast<double>(instrument.count());
        if (instrument.count() > 0) {
          row.mean = instrument.mean();
          row.p50 = instrument.Percentile(50);
          row.p99 = instrument.Percentile(99);
          row.max = instrument.max();
        }
      }
      snapshot.rows.push_back(std::move(row));
    };
    for (const auto& [key, counter] : counters_) emit(key, counter);
    for (const auto& [key, gauge] : gauges_) emit(key, gauge);
    for (const auto& [key, histogram] : histograms_) emit(key, histogram);
  }
  return snapshot;
}

namespace {

/// `labels` without its "detector_shard=..." entry; `had_shard` reports
/// whether one was present.
std::string WithoutShardLabel(const std::string& labels, bool* had_shard) {
  *had_shard = false;
  if (labels.empty()) return labels;
  std::vector<std::string> kept;
  for (const std::string& part : Split(labels, ',')) {
    if (StartsWith(part, "detector_shard=")) {
      *had_shard = true;
      continue;
    }
    kept.push_back(part);
  }
  return Join(kept, ",");
}

}  // namespace

MetricsSnapshot MergeShardRows(const MetricsSnapshot& snapshot) {
  MetricsSnapshot merged;
  merged.ts_ns = snapshot.ts_ns;
  // (name, stripped labels) -> index into merged.rows; <0 marks a group
  // owned by an unsharded aggregate row, which absorbs shard rows.
  std::map<std::pair<std::string, std::string>, std::ptrdiff_t> groups;
  for (const SnapshotRow& row : snapshot.rows) {
    bool had_shard = false;
    const std::string labels = WithoutShardLabel(row.labels, &had_shard);
    const auto key = std::make_pair(row.name, labels);
    auto it = groups.find(key);
    if (it == groups.end()) {
      SnapshotRow out = row;
      out.labels = labels;
      merged.rows.push_back(std::move(out));
      const auto index =
          static_cast<std::ptrdiff_t>(merged.rows.size()) - 1;
      groups.emplace(key, had_shard ? index : -index - 1);
      continue;
    }
    if (it->second < 0) continue;  // aggregate row already covers these
    SnapshotRow& out = merged.rows[static_cast<size_t>(it->second)];
    if (!had_shard) {
      // The aggregate row arrived after its shard rows: it already
      // equals their sum, so it replaces the accumulation.
      out = row;
      out.labels = labels;
      it->second = -it->second - 1;
      continue;
    }
    if (row.kind == MetricKind::kHistogram) {
      const double n = out.value + row.value;
      out.mean = n == 0
                     ? 0
                     : (out.mean * out.value + row.mean * row.value) / n;
      out.value = n;
      out.max = std::max(out.max, row.max);
      out.p50 = 0;
      out.p99 = 0;
    } else {
      out.value += row.value;
    }
  }
  return merged;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"ts_ns\":" << snapshot.ts_ns << ",\"metrics\":[";
  bool first = true;
  for (const SnapshotRow& row : snapshot.rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(row.name) << "\",\"labels\":\""
       << JsonEscape(row.labels) << "\",\"kind\":\""
       << MetricKindName(row.kind) << "\",\"unit\":\""
       << JsonEscape(row.unit) << "\",\"value\":" << FormatDouble(row.value, 6);
    if (row.kind == MetricKind::kHistogram) {
      os << ",\"mean\":" << FormatDouble(row.mean, 6)
         << ",\"p50\":" << FormatDouble(row.p50, 6)
         << ",\"p99\":" << FormatDouble(row.p99, 6)
         << ",\"max\":" << FormatDouble(row.max, 6);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

Status AppendSnapshotJsonl(const MetricsSnapshot& snapshot,
                           const std::string& path) {
  std::ofstream os(path, std::ios::app);
  if (!os) return Status::InvalidArgument(StrCat("cannot open ", path));
  os << SnapshotToJson(snapshot) << "\n";
  if (!os) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

namespace {

Result<MetricsSnapshot> SnapshotFromJson(const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("snapshot line is not a JSON object");
  }
  MetricsSnapshot snapshot;
  const JsonValue* ts = value.Get("ts_ns");
  if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("snapshot missing ts_ns");
  }
  snapshot.ts_ns = static_cast<int64_t>(ts->number);
  const JsonValue* metrics = value.Get("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("snapshot missing metrics array");
  }
  for (const JsonValue& item : metrics->items) {
    if (item.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("metric row is not an object");
    }
    SnapshotRow row;
    auto read_string = [&item](const char* key, std::string* out) {
      const JsonValue* v = item.Get(key);
      if (v != nullptr && v->kind == JsonValue::Kind::kString) *out = v->string;
    };
    auto read_number = [&item](const char* key, double* out) {
      const JsonValue* v = item.Get(key);
      if (v != nullptr && v->kind == JsonValue::Kind::kNumber) *out = v->number;
    };
    read_string("name", &row.name);
    read_string("labels", &row.labels);
    read_string("unit", &row.unit);
    std::string kind;
    read_string("kind", &kind);
    if (kind == "gauge") {
      row.kind = MetricKind::kGauge;
    } else if (kind == "histogram") {
      row.kind = MetricKind::kHistogram;
    } else {
      row.kind = MetricKind::kCounter;
    }
    read_number("value", &row.value);
    read_number("mean", &row.mean);
    read_number("p50", &row.p50);
    read_number("p99", &row.p99);
    read_number("max", &row.max);
    snapshot.rows.push_back(std::move(row));
  }
  return snapshot;
}

}  // namespace

Result<std::vector<MetricsSnapshot>> ReadSnapshotsJsonl(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound(StrCat("cannot open ", path));
  std::vector<MetricsSnapshot> snapshots;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    Result<JsonValue> value = ParseJson(line);
    if (!value.ok()) {
      return Status::InvalidArgument(StrCat(path, ":", line_no, ": ",
                                            value.status().message()));
    }
    Result<MetricsSnapshot> snapshot = SnapshotFromJson(*value);
    if (!snapshot.ok()) {
      return Status::InvalidArgument(StrCat(path, ":", line_no, ": ",
                                            snapshot.status().message()));
    }
    snapshots.push_back(std::move(*snapshot));
  }
  return snapshots;
}

}  // namespace sentineld
