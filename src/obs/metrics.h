#ifndef SENTINELD_OBS_METRICS_H_
#define SENTINELD_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/status.h"

namespace sentineld {

/// Instrument families of the metrics registry. Counters are monotone
/// event totals, gauges are point-in-time levels, histograms are sample
/// distributions (util/histogram — exact percentiles, fine at runtime
/// scale).
enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

/// One entry of the closed metric catalogue. The catalogue is the single
/// source of truth for what the observability layer can record: every
/// instrument handed out by MetricsRegistry must name a catalogue entry
/// of the matching kind, and docs/observability.md documents exactly
/// this table (tests/obs_test.cc asserts the two stay identical).
struct MetricInfo {
  const char* name;
  MetricKind kind;
  const char* unit;
  /// Comma-separated label keys ("" for unlabeled metrics); instruments
  /// must supply values for exactly these keys, in this order.
  const char* labels;
  /// What the metric measures, citing the paper quantity where one
  /// exists (see docs/observability.md for the long form).
  const char* help;
};

/// The full catalogue, in stable (documentation) order.
std::span<const MetricInfo> MetricCatalog();

/// Catalogue lookup by name; nullptr when unknown.
const MetricInfo* FindMetric(std::string_view name);

/// Monotone event total.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }

  /// Overwrites the value with a running total maintained elsewhere —
  /// how existing component counters (Network, Detector, ReliableLink)
  /// are mirrored into the registry at sample time without adding any
  /// work to their hot paths.
  void SetTotal(uint64_t total) { value_ = total; }

  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time level.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// One instrument's state at snapshot time. Counter/gauge values are in
/// `value`; histograms additionally report their summary statistics
/// (`value` holds the sample count).
struct SnapshotRow {
  std::string name;
  std::string labels;
  MetricKind kind = MetricKind::kCounter;
  std::string unit;
  double value = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
  double max = 0;
};

/// A full registry sample at one instant of (simulated) time.
struct MetricsSnapshot {
  int64_t ts_ns = 0;
  std::vector<SnapshotRow> rows;

  /// The row with this (name, labels), or nullptr.
  const SnapshotRow* Find(std::string_view name,
                          std::string_view labels = "") const;
};

/// Named-instrument registry. Instruments are created on first use and
/// live as long as the registry; returned pointers are stable, so hot
/// call sites resolve once and update through the pointer. Lookups
/// CHECK-fail on names outside MetricCatalog(), kind mismatches, and
/// label keys that differ from the catalogue entry — an unknown metric
/// is a programming error, not a runtime condition.
class MetricsRegistry {
 public:
  /// `labels` is a comma-separated "key=value" list whose keys must
  /// match the catalogue entry exactly (e.g. "site=2" or
  /// "site=0,op=and"); "" for unlabeled metrics.
  Counter* GetCounter(std::string_view name, std::string labels = "");
  Gauge* GetGauge(std::string_view name, std::string labels = "");
  Histogram* GetHistogram(std::string_view name, std::string labels = "");

  /// Samples every instrument created so far.
  MetricsSnapshot Snapshot(int64_t ts_ns) const;

  /// Number of instruments created so far.
  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  const MetricInfo& Resolve(std::string_view name, MetricKind kind,
                            const std::string& labels) const;

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

/// Collapses the optional `detector_shard` label (docs/parallelism.md):
/// rows identical except for their detector_shard value merge into one
/// row without it, in first-appearance order. When an unsharded
/// aggregate row for the same (name, remaining labels) already exists —
/// the runtime emits both, with the aggregate merged at heartbeat — the
/// aggregate wins and the shard rows fold away instead of
/// double-counting. Counters and gauges sum; merged histograms sum
/// counts with a count-weighted mean and max-of-max, but reset p50/p99
/// to 0 (percentiles are not mergeable from summaries). Rows without
/// the label pass through untouched.
MetricsSnapshot MergeShardRows(const MetricsSnapshot& snapshot);

/// Serializes one snapshot as a single-line JSON object (the JSONL
/// record format; see docs/observability.md for the schema).
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

/// Appends `snapshot` as one JSONL line to `path` (creating the file).
Status AppendSnapshotJsonl(const MetricsSnapshot& snapshot,
                           const std::string& path);

/// Parses a snapshot JSONL file (as written by AppendSnapshotJsonl or
/// ObsHub::WriteSnapshotsJsonl) back into snapshots, in file order.
Result<std::vector<MetricsSnapshot>> ReadSnapshotsJsonl(
    const std::string& path);

}  // namespace sentineld

#endif  // SENTINELD_OBS_METRICS_H_
