#include "obs/obs.h"

#include <fstream>

#include "util/string_util.h"

namespace sentineld {

const MetricsSnapshot& ObsHub::TakeSnapshot(int64_t ts_ns) {
  snapshots_.push_back(metrics_.Snapshot(ts_ns));
  return snapshots_.back();
}

Status ObsHub::WriteSnapshotsJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::InvalidArgument(StrCat("cannot open ", path));
  for (const MetricsSnapshot& snapshot : snapshots_) {
    os << SnapshotToJson(snapshot) << "\n";
  }
  if (!os) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

}  // namespace sentineld
