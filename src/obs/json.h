#ifndef SENTINELD_OBS_JSON_H_
#define SENTINELD_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sentineld {

/// Minimal JSON document model, just enough for the observability
/// tooling: sentinel-stat reads snapshot JSONL back, and the tests
/// validate the trace exporters by parsing their output. Not a general
/// JSON library — no streaming, documents are owned trees.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(std::string_view key) const;
};

/// Parses one JSON document (the whole of `text` modulo whitespace).
/// Handles the standard escapes plus \uXXXX for BMP code points.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `raw` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string JsonEscape(std::string_view raw);

}  // namespace sentineld

#endif  // SENTINELD_OBS_JSON_H_
