// sentinel-stat: renders metrics snapshots captured by the
// observability layer (ObsHub::WriteSnapshotsJsonl) as a live-style
// table, and diffs two snapshots to show what a run (or a stretch of
// one) did.
//
//   sentinel-stat <snapshots.jsonl>             last snapshot as a table
//   sentinel-stat --diff <snapshots.jsonl>      first vs last snapshot
//   sentinel-stat --diff <a.jsonl> <b.jsonl>    last of a vs last of b
//
// --merge-shards collapses the optional detector_shard label before
// rendering or diffing (obs/metrics.h MergeShardRows), so a sharded
// ParallelDetector run reads like its sequential equivalent.
//
// Exit status: 0 on success, 2 on usage errors or unreadable input.

#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace sentineld {
namespace {

std::string FormatValue(const SnapshotRow& row) {
  if (row.kind == MetricKind::kHistogram) {
    if (row.value == 0) return "n=0";
    return StrCat("n=", FormatDouble(row.value, 0),
                  " mean=", FormatDouble(row.mean, 2),
                  " p50=", FormatDouble(row.p50, 2),
                  " p99=", FormatDouble(row.p99, 2),
                  " max=", FormatDouble(row.max, 2));
  }
  return FormatDouble(row.value, row.kind == MetricKind::kGauge ? 4 : 0);
}

int Render(const std::string& path, bool merge_shards) {
  Result<std::vector<MetricsSnapshot>> snapshots = ReadSnapshotsJsonl(path);
  if (!snapshots.ok()) {
    std::cerr << "sentinel-stat: " << snapshots.status() << "\n";
    return 2;
  }
  if (snapshots->empty()) {
    std::cerr << "sentinel-stat: " << path << " holds no snapshots\n";
    return 2;
  }
  const MetricsSnapshot latest = merge_shards
                                     ? MergeShardRows(snapshots->back())
                                     : snapshots->back();
  TablePrinter table(StrCat("--- ", path, " @ ",
                            FormatDouble(
                                static_cast<double>(latest.ts_ns) / 1e6, 1),
                            " ms (", snapshots->size(), " snapshots) ---"));
  table.SetHeader({"metric", "labels", "kind", "unit", "value"});
  for (const SnapshotRow& row : latest.rows) {
    table.AddRow({row.name, row.labels, MetricKindName(row.kind), row.unit,
                  FormatValue(row)});
  }
  table.Print(std::cout);
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b,
         bool merge_shards) {
  Result<std::vector<MetricsSnapshot>> a = ReadSnapshotsJsonl(path_a);
  if (!a.ok()) {
    std::cerr << "sentinel-stat: " << a.status() << "\n";
    return 2;
  }
  Result<std::vector<MetricsSnapshot>> b =
      path_b.empty() ? a : ReadSnapshotsJsonl(path_b);
  if (!b.ok()) {
    std::cerr << "sentinel-stat: " << b.status() << "\n";
    return 2;
  }
  // One file: first vs last. Two files: last of each.
  if (a->empty() || b->empty() || (path_b.empty() && a->size() < 2)) {
    std::cerr << "sentinel-stat: need two snapshots to diff\n";
    return 2;
  }
  // Merging before diffing keeps the deltas aggregate-level: per-shard
  // rows first collapse in each snapshot, then subtract.
  const MetricsSnapshot& before_raw =
      path_b.empty() ? a->front() : a->back();
  const MetricsSnapshot before =
      merge_shards ? MergeShardRows(before_raw) : before_raw;
  const MetricsSnapshot after =
      merge_shards ? MergeShardRows(b->back()) : b->back();
  TablePrinter table(StrCat(
      "--- diff: ", FormatDouble(static_cast<double>(before.ts_ns) / 1e6, 1),
      " ms -> ", FormatDouble(static_cast<double>(after.ts_ns) / 1e6, 1),
      " ms ---"));
  table.SetHeader({"metric", "labels", "before", "after", "delta"});
  for (const SnapshotRow& row : after.rows) {
    const SnapshotRow* old = before.Find(row.name, row.labels);
    const double old_value = old != nullptr ? old->value : 0;
    SnapshotRow old_row = old != nullptr ? *old : SnapshotRow{};
    old_row.kind = row.kind;  // absent-before rows render as zero
    table.AddRow({row.name, row.labels, FormatValue(old_row),
                  FormatValue(row),
                  FormatDouble(row.value - old_value,
                               row.kind == MetricKind::kGauge ? 4 : 0)});
  }
  table.Print(std::cout);
  return 0;
}

int Run(int argc, char** argv) {
  bool diff = false;
  bool merge_shards = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg == "--merge-shards") {
      merge_shards = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sentinel-stat [--diff] [--merge-shards] "
                   "<snapshots.jsonl> [<b.jsonl>]\n";
      return 0;
    } else if (StartsWith(arg, "-")) {
      std::cerr << "sentinel-stat: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2 || (!diff && paths.size() > 1)) {
    std::cerr << "usage: sentinel-stat [--diff] [--merge-shards] "
                 "<snapshots.jsonl> [<b.jsonl>]\n";
    return 2;
  }
  if (diff) {
    return Diff(paths[0], paths.size() > 1 ? paths[1] : "", merge_shards);
  }
  return Render(paths[0], merge_shards);
}

}  // namespace
}  // namespace sentineld

int main(int argc, char** argv) { return sentineld::Run(argc, argv); }
