#include "obs/trace.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "util/string_util.h"

namespace sentineld {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kRaise:
      return "raise";
    case TracePhase::kSend:
      return "send";
    case TracePhase::kDrop:
      return "drop";
    case TracePhase::kFrame:
      return "frame";
    case TracePhase::kRetransmit:
      return "retransmit";
    case TracePhase::kGiveUp:
      return "give_up";
    case TracePhase::kChannelDeliver:
      return "channel_deliver";
    case TracePhase::kOffer:
      return "offer";
    case TracePhase::kSequence:
      return "sequence";
    case TracePhase::kFeed:
      return "feed";
    case TracePhase::kEmit:
      return "emit";
    case TracePhase::kDetect:
      return "detect";
  }
  return "unknown";
}

uint64_t Tracer::IdOf(const Event* event) {
  auto [it, inserted] = ids_.emplace(event->uid(), next_id_);
  if (inserted) ++next_id_;
  return it->second;
}

void Tracer::Record(TracePhase phase, SiteId site, const EventPtr& event,
                    std::string detail) {
  if (event == nullptr) return;
  if (records_.size() >= capacity_) {
    ++dropped_records_;
    return;
  }
  TraceRecord record;
  record.ts_ns = clock_ ? clock_() : 0;
  record.site = site;
  record.phase = phase;
  record.event_id = IdOf(event.get());
  record.type = event->type();
  record.detail = std::move(detail);
  if (!event->is_primitive()) {
    std::vector<EventPtr> primitives;
    CollectPrimitives(event, primitives);
    record.refs.reserve(primitives.size());
    for (const EventPtr& primitive : primitives) {
      record.refs.push_back(IdOf(primitive.get()));
    }
  }
  records_.push_back(std::move(record));
}

void Tracer::Clear() {
  records_.clear();
  ids_.clear();
  next_id_ = 1;
  dropped_records_ = 0;
}

std::string Tracer::TypeName(EventTypeId type) const {
  if (namer_) return namer_(type);
  return StrCat("type", type);
}

Status Tracer::WriteJsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::InvalidArgument(StrCat("cannot open ", path));
  for (const TraceRecord& record : records_) {
    os << "{\"ts_ns\":" << record.ts_ns << ",\"site\":" << record.site
       << ",\"phase\":\"" << TracePhaseName(record.phase)
       << "\",\"id\":" << record.event_id << ",\"type\":\""
       << JsonEscape(TypeName(record.type)) << "\"";
    if (!record.detail.empty()) {
      os << ",\"detail\":\"" << JsonEscape(record.detail) << "\"";
    }
    if (!record.refs.empty()) {
      os << ",\"refs\":[";
      for (size_t i = 0; i < record.refs.size(); ++i) {
        if (i > 0) os << ",";
        os << record.refs[i];
      }
      os << "]";
    }
    os << "}\n";
  }
  if (!os) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::InvalidArgument(StrCat("cannot open ", path));
  // First kRaise timestamp per interned id, for the detection spans.
  std::unordered_map<uint64_t, int64_t> raised_at;
  for (const TraceRecord& record : records_) {
    if (record.phase == TracePhase::kRaise) {
      raised_at.emplace(record.event_id, record.ts_ns);
    }
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const TraceRecord& record : records_) {
    // trace_event timestamps are microseconds.
    const double ts_us = static_cast<double>(record.ts_ns) / 1000.0;
    comma();
    os << "{\"name\":\"" << TracePhaseName(record.phase) << " "
       << JsonEscape(TypeName(record.type))
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << FormatDouble(ts_us, 3)
       << ",\"pid\":0,\"tid\":" << record.site << ",\"args\":{\"id\":"
       << record.event_id << ",\"detail\":\"" << JsonEscape(record.detail)
       << "\"}}";
    if (record.phase == TracePhase::kDetect && !record.refs.empty()) {
      // Span from the earliest constituent raise to the detection: its
      // length IS the occurrence-to-detection latency the metrics
      // histogram summarizes.
      int64_t start_ns = record.ts_ns;
      for (const uint64_t ref : record.refs) {
        auto it = raised_at.find(ref);
        if (it != raised_at.end() && it->second < start_ns) {
          start_ns = it->second;
        }
      }
      const double start_us = static_cast<double>(start_ns) / 1000.0;
      comma();
      os << "{\"name\":\"detection " << JsonEscape(TypeName(record.type))
         << "\",\"ph\":\"X\",\"ts\":" << FormatDouble(start_us, 3)
         << ",\"dur\":" << FormatDouble(ts_us - start_us, 3)
         << ",\"pid\":0,\"tid\":" << record.site << ",\"args\":{\"id\":"
         << record.event_id << ",\"constituents\":" << record.refs.size()
         << "}}";
    }
  }
  os << "\n]}\n";
  if (!os) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

}  // namespace sentineld
