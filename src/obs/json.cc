#include "obs/json.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace sentineld {
namespace {

/// Recursive-descent parser over a string_view cursor. Errors carry the
/// byte offset, which is enough for line-oriented JSONL diagnostics.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::InvalidArgument(
        StrCat("JSON parse error at offset ", pos_, ": ", message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (ConsumeWord("true")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeWord("false")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (ConsumeWord("null")) return JsonValue{};
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      Result<JsonValue> member = ParseValue();
      if (!member.ok()) return member;
      value.members.emplace_back(std::move(key->string),
                                 std::move(*member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      Result<JsonValue> item = ParseValue();
      if (!item.ok()) return item;
      value.items.push_back(std::move(*item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected string");
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          value.string.push_back(escape);
          break;
        case 'b':
          value.string.push_back('\b');
          break;
        case 'f':
          value.string.push_back('\f');
          break;
        case 'n':
          value.string.push_back('\n');
          break;
        case 'r':
          value.string.push_back('\r');
          break;
        case 't':
          value.string.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // BMP code points only (no surrogate pairs) — all this
          // codebase ever emits is ASCII, so the cap is not a loss.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate pairs unsupported");
          }
          if (code < 0x80) {
            value.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.string.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            value.string.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.string.push_back(
                static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = number;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace sentineld
