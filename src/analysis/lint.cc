#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "util/string_util.h"

namespace sentineld {
namespace {

/// Shared state of one LintExpr run: the registry for canonical names, the
/// deployment options, a canonical-form cache, and the findings.
class Linter {
 public:
  Linter(const EventTypeRegistry& registry, const LintOptions& options)
      : registry_(registry), options_(options) {}

  std::vector<Diagnostic> Run(const ExprPtr& root) {
    CheckContextFit(root);
    std::vector<size_t> path;
    Visit(root, path);
    Filter();
    return std::move(diagnostics_);
  }

 private:
  /// Canonical text of `expr` (commutative operands sorted), the
  /// structural-identity key sub-expression sharing also uses.
  const std::string& Canon(const ExprPtr& expr) {
    auto it = canon_.find(expr.get());
    if (it == canon_.end()) {
      it = canon_
               .emplace(expr.get(),
                        CanonicalizeExpr(expr, registry_)->ToString(registry_))
               .first;
    }
    return it->second;
  }

  /// Decomposes a chain of `+` offsets: "B + 2t + 3t" -> {B, 5}.
  static std::pair<ExprPtr, int64_t> PlusBase(ExprPtr expr) {
    int64_t ticks = 0;
    while (expr->kind == OpKind::kPlus) {
      ticks += expr->period_ticks;
      expr = expr->children[0];
    }
    return {expr, ticks};
  }

  /// Whether occurrences of `expr` can extend over time (more than one
  /// constituent): everything except primitives and disjunctions of
  /// non-spanning alternatives (OR re-types its operand's occurrence
  /// unchanged).
  bool Spanning(const ExprPtr& expr) {
    switch (expr->kind) {
      case OpKind::kPrimitive:
        return false;
      case OpKind::kOr:
        return Spanning(expr->children[0]) || Spanning(expr->children[1]);
      default:
        return true;
    }
  }

  /// Whether every occurrence of `expr` necessarily carries a completed
  /// occurrence of the expression whose canonical form is `key` among its
  /// constituents. Follows what each operator's emitted occurrence
  /// contains (see snoop/node.h): AND/SEQ carry both operands, OR one of
  /// them, NOT {initiator, terminator}, A {initiator, middle},
  /// A* {initiator, ..., terminator}, P {initiator, tick},
  /// P* {initiator, ..., terminator}, + {initiator, tick},
  /// ANY m of n (so at least n-m+1 children would have to carry it).
  bool NecessarilyContains(const ExprPtr& expr, const std::string& key) {
    if (Canon(expr) == key) return true;
    const auto& c = expr->children;
    switch (expr->kind) {
      case OpKind::kPrimitive:
        return false;
      case OpKind::kAnd:
      case OpKind::kSeq:
        return NecessarilyContains(c[0], key) ||
               NecessarilyContains(c[1], key);
      case OpKind::kOr:
        return NecessarilyContains(c[0], key) &&
               NecessarilyContains(c[1], key);
      case OpKind::kNot:
        return NecessarilyContains(c[1], key) ||
               NecessarilyContains(c[2], key);
      case OpKind::kAperiodic:
        return NecessarilyContains(c[0], key) ||
               NecessarilyContains(c[1], key);
      case OpKind::kAperiodicStar:
        return NecessarilyContains(c[0], key) ||
               NecessarilyContains(c[2], key);
      case OpKind::kPeriodic:
      case OpKind::kPlus:
        return NecessarilyContains(c[0], key);
      case OpKind::kPeriodicStar:
        return NecessarilyContains(c[0], key) ||
               NecessarilyContains(c[1], key);
      case OpKind::kAny: {
        size_t carrying = 0;
        for (const ExprPtr& child : c) {
          if (NecessarilyContains(child, key)) ++carrying;
        }
        return carrying >= c.size() - static_cast<size_t>(
                                          expr->any_threshold) + 1;
      }
    }
    return false;
  }

  void Report(LintId id, LintSeverity severity, const ExprPtr& node,
              const std::vector<size_t>& path, std::string message,
              std::string citation) {
    Diagnostic d;
    d.id = id;
    d.severity = severity;
    d.message = std::move(message);
    d.citation = std::move(citation);
    d.begin = node->src_begin;
    d.end = node->src_end;
    d.path = path;
    d.subexpr = node->ToString(registry_);
    diagnostics_.push_back(std::move(d));
  }

  /// Expression-wide context diagnostics (SL009/SL010), reported at the
  /// root before the per-node walk.
  void CheckContextFit(const ExprPtr& root) {
    if (options_.context == ParamContext::kUnrestricted) return;
    if (!HasContextSensitiveOp(root)) {
      Report(LintId::kContextNoEffect, LintSeverity::kNote, root, {},
             StrCat("declared context ",
                    ParamContextToString(options_.context),
                    " has no effect: the expression contains only "
                    "context-insensitive operators (primitive, or)"),
             "Snoop parameter contexts (Chakravarthy et al. VLDB'94)");
      return;  // the stronger statement subsumes SL010
    }
    if (options_.context == ParamContext::kCumulative &&
        !HasAccumulatingOp(root)) {
      Report(LintId::kCumulativeNoAccumulator, LintSeverity::kWarning, root,
             {},
             "kCumulative context but no accumulating operator (and, ANY, "
             "';', A*, P*): A deliberately does not accumulate (its "
             "cumulative variant is A*), so the rule behaves as "
             "kContinuous",
             "Snoop parameter contexts (Chakravarthy et al. VLDB'94)");
    }
  }

  static bool HasContextSensitiveOp(const ExprPtr& expr) {
    if (expr->kind != OpKind::kPrimitive && expr->kind != OpKind::kOr) {
      return true;
    }
    return std::any_of(expr->children.begin(), expr->children.end(),
                       HasContextSensitiveOp);
  }

  static bool HasAccumulatingOp(const ExprPtr& expr) {
    switch (expr->kind) {
      case OpKind::kAnd:
      case OpKind::kAny:
      case OpKind::kSeq:
      case OpKind::kAperiodicStar:
      case OpKind::kPeriodicStar:
        return true;
      default:
        return std::any_of(expr->children.begin(), expr->children.end(),
                           HasAccumulatingOp);
    }
  }

  void Visit(const ExprPtr& node, std::vector<size_t>& path) {
    switch (node->kind) {
      case OpKind::kNot:
        CheckWindow(node, path, /*initiator=*/node->children[1],
                    /*terminator=*/node->children[2]);
        CheckNotMiddle(node, path);
        CheckMiddle(node, path, /*middle=*/node->children[0],
                    /*terminator=*/node->children[2]);
        break;
      case OpKind::kAperiodic:
      case OpKind::kAperiodicStar:
        CheckWindow(node, path, node->children[0], node->children[2]);
        CheckMiddle(node, path, node->children[1], node->children[2]);
        break;
      case OpKind::kPeriodic:
      case OpKind::kPeriodicStar:
        CheckWindow(node, path, node->children[0], node->children[1]);
        break;
      case OpKind::kAny:
        CheckAny(node, path);
        break;
      case OpKind::kAnd:
      case OpKind::kOr:
        CheckDuplicateOperand(node, path);
        break;
      case OpKind::kSeq:
        CheckSeqAnomaly(node, path);
        break;
      case OpKind::kPrimitive:
      case OpKind::kPlus:
        break;
    }
    CheckTimebaseOrder(node, path);
    for (size_t i = 0; i < node->children.size(); ++i) {
      path.push_back(i);
      Visit(node->children[i], path);
      path.pop_back();
    }
  }

  /// SL002 / SL003: window shape. `initiator` opens and `terminator`
  /// closes the operator's window.
  void CheckWindow(const ExprPtr& node, const std::vector<size_t>& path,
                   const ExprPtr& initiator, const ExprPtr& terminator) {
    if (Canon(initiator) == Canon(terminator)) {
      Report(LintId::kIdenticalWindowEndpoints, LintSeverity::kWarning, node,
             path,
             "window initiator and terminator are the same expression: each "
             "occurrence both opens and closes windows, and which role wins "
             "is an implementation tie-break",
             "paper Sec. 5.3 (operator windows)");
      return;
    }
    auto [init_base, init_ticks] = PlusBase(initiator);
    auto [term_base, term_ticks] = PlusBase(terminator);
    if ((init_ticks != 0 || term_ticks != 0) &&
        Canon(init_base) == Canon(term_base) && term_ticks <= init_ticks) {
      Report(
          LintId::kInvertedWindow, LintSeverity::kError, node, path,
          term_ticks == init_ticks
              ? StrCat("degenerate window: initiator and terminator fire at "
                       "the same tick (+",
                       init_ticks, "t) after the same anchor `",
                       Canon(init_base), "`, so the open window is empty")
              : StrCat("inverted window: the terminator fires ",
                       init_ticks - term_ticks,
                       " ticks before the initiator for the same anchor "
                       "occurrence of `",
                       Canon(init_base), "`"),
          "paper Prop. 4.1 (same-site local order) and Sec. 5.3 (open "
          "windows)");
    }
  }

  /// SL006: not() middle equal to one of its window endpoints.
  void CheckNotMiddle(const ExprPtr& node, const std::vector<size_t>& path) {
    const std::string& middle = Canon(node->children[0]);
    const bool is_initiator = middle == Canon(node->children[1]);
    const bool is_terminator = middle == Canon(node->children[2]);
    if (!is_initiator && !is_terminator) return;
    Report(LintId::kNotMiddleIsEndpoint, LintSeverity::kWarning, node, path,
           StrCat("the forbidden event of not() is the window ",
                  is_initiator ? "initiator" : "terminator",
                  " itself; the open interval excludes its endpoints, so "
                  "only *other* occurrences of that stream can block"),
           "paper Def 5.5 / Sec. 5.3 (non-occurrence over an open "
           "interval)");
  }

  /// SL007: a middle operand that cannot complete without an occurrence
  /// of the window terminator among its constituents.
  void CheckMiddle(const ExprPtr& node, const std::vector<size_t>& path,
                   const ExprPtr& middle, const ExprPtr& terminator) {
    const std::string& term_key = Canon(terminator);
    if (Canon(middle) == term_key) return;  // SL003/SL006 territory
    if (!NecessarilyContains(middle, term_key)) return;
    Report(LintId::kMiddleRequiresTerminator, LintSeverity::kWarning, node,
           path,
           StrCat(node->kind == OpKind::kNot
                      ? "the not() guard is near-vacuous: every occurrence "
                        "of the forbidden event carries an occurrence of "
                        "the window terminator `"
                      : "unreachable middle: every occurrence of the middle "
                        "operand carries an occurrence of the window "
                        "terminator `",
                  term_key,
                  "`, whose timestamp closes the window at or before the "
                  "middle's own timestamp (strict containment can only "
                  "arise from timestamp-equality corner cases)"),
           "paper Def 5.2 (timestamp = max over constituents), Def 5.3");
  }

  /// SL004 / SL011: ANY constituent distinctness and collapsible forms.
  void CheckAny(const ExprPtr& node, const std::vector<size_t>& path) {
    std::map<std::string, size_t> first_seen;
    for (size_t i = 0; i < node->children.size(); ++i) {
      const std::string& key = Canon(node->children[i]);
      auto [it, inserted] = first_seen.emplace(key, i);
      if (!inserted) {
        Report(LintId::kDuplicateAnyConstituent, LintSeverity::kError, node,
               path,
               StrCat("ANY constituents must be distinct events; operand ",
                      i + 1, " repeats operand ", it->second + 1),
               "Snoop ANY (m of n *distinct* events; snoop/ast.h contract)");
      }
    }
    const size_t n = node->children.size();
    if (node->any_threshold == 1) {
      Report(LintId::kCollapsibleAny, LintSeverity::kNote, node, path,
             "ANY(1, ...) is equivalent to a disjunction; prefer `or`",
             "");
    } else if (static_cast<size_t>(node->any_threshold) == n) {
      Report(LintId::kCollapsibleAny, LintSeverity::kNote, node, path,
             StrCat("ANY(", n, ", ...) over ", n,
                    " constituents is equivalent to a conjunction; prefer "
                    "`and`"),
             "");
    }
  }

  /// SL005: `E and E` / `E or E`.
  void CheckDuplicateOperand(const ExprPtr& node,
                             const std::vector<size_t>& path) {
    if (Canon(node->children[0]) != Canon(node->children[1])) return;
    Report(LintId::kDuplicateOperand, LintSeverity::kWarning, node, path,
           node->kind == OpKind::kAnd
               ? "conjunction of an expression with itself: both operands "
                 "compile to one shared graph node and a pair of "
                 "occurrences collapses under max(ST) whenever one "
                 "dominates the other"
               : "disjunction of an expression with itself: the second "
                 "alternative is unreachable (never adds an occurrence)",
           "paper Def 5.1 (max set)");
  }

  /// SL008: the documented point-based sequence anomaly.
  void CheckSeqAnomaly(const ExprPtr& node, const std::vector<size_t>& path) {
    if (options_.interval_policy != IntervalPolicy::kPointBased) return;
    if (!Spanning(node->children[1])) return;
    Report(LintId::kPointPolicyAnomaly, LintSeverity::kWarning, node, path,
           "under point-based semantics a sequence compares only the "
           "operands' (max) timestamps, so early constituents of the "
           "right operand may precede the left operand entirely (the "
           "\"B ; (A ; C)\" anomaly); consider "
           "IntervalPolicy::kIntervalBased",
           "snoop/context.h (IntervalPolicy); bench/interval_anomaly");
  }

  /// SL016: order-sensitive operators under a vector-clock deployment.
  /// The vector backend orders exactly the causal relation, so two
  /// cross-site occurrences with no message chain between them are
  /// Concurrent — a sequence (or an interval window) spanning sites then
  /// silently never matches, where the approximated-global backend would
  /// have ordered the same pair by synchronized time. Advisory: the rule
  /// is fine when its constituents are same-site or causally coupled.
  void CheckTimebaseOrder(const ExprPtr& node,
                          const std::vector<size_t>& path) {
    if (options_.timebase != TimebaseKind::kVector) return;
    switch (node->kind) {
      case OpKind::kSeq:
      case OpKind::kNot:
      case OpKind::kAperiodic:
      case OpKind::kAperiodicStar:
      case OpKind::kPeriodic:
      case OpKind::kPeriodicStar:
        break;
      default:
        return;
    }
    Report(LintId::kConcurrentUnderLogicalClock, LintSeverity::kWarning,
           node, path,
           StrCat("operator `", OpKindToString(node->kind),
                  "` relies on cross-site Before/interval ordering, which "
                  "the vector-clock backend resolves as concurrent for "
                  "causally-unrelated occurrences; cross-site matches "
                  "will silently not fire unless the constituents are "
                  "message-ordered (consider timebase approx or hlc)"),
           "docs/timebase.md (ordering degradation)");
  }

  void Filter() {
    if (options_.suppressed.empty()) return;
    const auto suppressed = [&](const Diagnostic& d) {
      return std::find(options_.suppressed.begin(),
                       options_.suppressed.end(),
                       LintIdToString(d.id)) != options_.suppressed.end();
    };
    diagnostics_.erase(std::remove_if(diagnostics_.begin(),
                                      diagnostics_.end(), suppressed),
                       diagnostics_.end());
  }

  const EventTypeRegistry& registry_;
  const LintOptions& options_;
  std::map<const Expr*, std::string> canon_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace

std::vector<Diagnostic> LintExpr(const ExprPtr& expr,
                                 const EventTypeRegistry& registry,
                                 const LintOptions& options) {
  // Robustness first: the linter runs on untrusted input (rule files,
  // fuzzers) and must never crash on a malformed tree.
  if (const Status valid = ValidateExpr(expr); !valid.ok()) {
    Diagnostic d;
    d.id = LintId::kParseError;
    d.severity = LintSeverity::kError;
    d.message = StrCat("invalid expression tree: ", valid.message());
    return {std::move(d)};
  }
  return Linter(registry, options).Run(expr);
}

}  // namespace sentineld
