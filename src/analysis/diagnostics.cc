#include "analysis/diagnostics.h"

#include "util/string_util.h"

namespace sentineld {

const char* LintSeverityToString(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

const char* LintIdToString(LintId id) {
  switch (id) {
    case LintId::kParseError:
      return "SL001";
    case LintId::kInvertedWindow:
      return "SL002";
    case LintId::kIdenticalWindowEndpoints:
      return "SL003";
    case LintId::kDuplicateAnyConstituent:
      return "SL004";
    case LintId::kDuplicateOperand:
      return "SL005";
    case LintId::kNotMiddleIsEndpoint:
      return "SL006";
    case LintId::kMiddleRequiresTerminator:
      return "SL007";
    case LintId::kPointPolicyAnomaly:
      return "SL008";
    case LintId::kContextNoEffect:
      return "SL009";
    case LintId::kCumulativeNoAccumulator:
      return "SL010";
    case LintId::kCollapsibleAny:
      return "SL011";
    case LintId::kDuplicateRule:
      return "SL012";
    case LintId::kSubsumedRule:
      return "SL013";
    case LintId::kUnknownEventName:
      return "SL014";
    case LintId::kUnboundedState:
      return "SL015";
    case LintId::kConcurrentUnderLogicalClock:
      return "SL016";
  }
  return "SL???";
}

bool HasLintErrors(std::span<const Diagnostic> diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == LintSeverity::kError) return true;
  }
  return false;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::string out = StrCat(LintSeverityToString(diagnostic.severity), " ",
                           LintIdToString(diagnostic.id));
  if (diagnostic.has_span()) {
    out = StrCat(out, " [", diagnostic.begin, "-", diagnostic.end, "]");
  }
  out = StrCat(out, " ", diagnostic.message);
  if (!diagnostic.subexpr.empty()) {
    out = StrCat(out, ": `", diagnostic.subexpr, "`");
  }
  if (!diagnostic.citation.empty()) {
    out = StrCat(out, " (cites ", diagnostic.citation, ")");
  }
  return out;
}

std::string FormatDiagnostics(std::span<const Diagnostic> diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d);
    out += '\n';
  }
  return out;
}

}  // namespace sentineld
