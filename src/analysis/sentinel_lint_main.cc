// sentinel-lint: static analysis of Snoop rule expressions.
//
//   sentinel-lint [options] <file.rules>...
//   sentinel-lint [options] --expr '<expression>'
//
// Options:
//   --context=<unrestricted|recent|chronicle|continuous|cumulative>
//       Parameter context the rules will run under (default recent, the
//       RuleSpec default).
//   --interval-policy=<point|interval>
//       Detector eligibility policy (default point).
//   --werror      Warnings fail the run (notes never do).
//   --quiet       Print nothing on success.
//
// Exit status: 0 clean, 1 findings at the failing severity, 2 usage or
// unreadable input. Rule files: one rule per line, `name : expression`,
// `#` comments; a trailing `# lint-suppress: SLnnn <why>` comment
// suppresses that diagnostic for that rule. docs/analysis.md is the
// catalogue of diagnostics.

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"
#include "analysis/rule_file.h"
#include "event/registry.h"
#include "snoop/parser.h"

namespace sentineld {
namespace {

int Usage() {
  std::cerr << "usage: sentinel-lint [--context=<ctx>] "
               "[--interval-policy=<point|interval>] [--werror] [--quiet] "
               "(<file.rules>... | --expr '<expression>')\n";
  return 2;
}

bool ParseContext(std::string_view name, ParamContext& out) {
  if (name == "unrestricted") out = ParamContext::kUnrestricted;
  else if (name == "recent") out = ParamContext::kRecent;
  else if (name == "chronicle") out = ParamContext::kChronicle;
  else if (name == "continuous") out = ParamContext::kContinuous;
  else if (name == "cumulative") out = ParamContext::kCumulative;
  else return false;
  return true;
}

int Run(int argc, char** argv) {
  LintOptions options;
  options.context = ParamContext::kRecent;  // RuleSpec's default
  bool werror = false;
  bool quiet = false;
  std::vector<std::string> files;
  std::vector<std::string> exprs;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--context=", 0) == 0) {
      if (!ParseContext(arg.substr(10), options.context)) return Usage();
    } else if (arg.rfind("--interval-policy=", 0) == 0) {
      const std::string_view policy = arg.substr(18);
      if (policy == "point") {
        options.interval_policy = IntervalPolicy::kPointBased;
      } else if (policy == "interval") {
        options.interval_policy = IntervalPolicy::kIntervalBased;
      } else {
        return Usage();
      }
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--expr") {
      if (++i >= argc) return Usage();
      exprs.emplace_back(argv[i]);
    } else if (!arg.empty() && arg.front() == '-') {
      return Usage();
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty() && exprs.empty()) return Usage();

  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;

  for (const std::string& text : exprs) {
    EventTypeRegistry registry;
    ParserOptions parser_options;
    parser_options.auto_register = true;
    Result<ExprPtr> expr = ParseExpr(text, registry, parser_options);
    if (!expr.ok()) {
      std::cout << "<expr>: error SL001 expression does not parse: "
                << expr.status().message() << "\n";
      ++errors;
      continue;
    }
    for (const Diagnostic& d : LintExpr(*expr, registry, options)) {
      std::cout << "<expr>: " << FormatDiagnostic(d) << "\n";
      if (d.severity == LintSeverity::kError) ++errors;
      if (d.severity == LintSeverity::kWarning) ++warnings;
      if (d.severity == LintSeverity::kNote) ++notes;
    }
  }

  for (const std::string& path : files) {
    Result<RuleFileReport> report = LintRuleFile(path, options);
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 2;
    }
    const bool failing = !report->Passes(werror);
    if (!quiet || failing) std::cout << report->Format(path);
    errors += report->errors;
    warnings += report->warnings;
    notes += report->notes;
  }

  if (errors > 0 || (werror && warnings > 0)) return 1;
  if (!quiet && errors + warnings + notes == 0) {
    std::cout << "sentinel-lint: clean\n";
  }
  return 0;
}

}  // namespace
}  // namespace sentineld

int main(int argc, char** argv) { return sentineld::Run(argc, argv); }
