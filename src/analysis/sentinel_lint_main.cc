// sentinel-lint: static analysis of Snoop rule expressions.
//
//   sentinel-lint [options] <file.rules>...
//   sentinel-lint [options] --expr '<expression>'
//
// Options:
//   --context=<unrestricted|recent|chronicle|continuous|cumulative>
//       Parameter context the rules will run under (default recent, the
//       RuleSpec default).
//   --interval-policy=<point|interval>
//       Detector eligibility policy (default point).
//   --timebase=<approx|hlc|vector>
//       Ordering backend the deployment runs on (default approx). Under
//       vector, SL016 flags order-sensitive operators whose cross-site
//       matches degrade to concurrency (docs/timebase.md).
//   --werror      Warnings fail the run (notes never do).
//   --quiet       Print nothing on success.
//   --catalogue   Whole-catalogue analysis across ALL input files: per-rule
//                 lint as usual, plus the cross-rule diagnostics
//                 SL012-SL015 (analysis/catalogue.h). Full-line
//                 `# producers: a, b` comments declare producer event
//                 names (enables SL014).
//   --report-json[=<path>]
//                 With --catalogue: emit the machine-readable sharing /
//                 cost report (schema "sentineld-catalogue-v1", validated
//                 by tools/check_catalogue_report.py) to <path>, or to
//                 stdout when no path is given.
//   --top-k=<n>   Entries in the report's top-K lists (default 10).
//
// Exit status: 0 clean, 1 findings at the failing severity, 2 usage or
// unreadable input. Rule files: one rule per line, `name : expression`,
// `#` comments; a trailing `# lint-suppress: SLnnn <why>` comment
// suppresses that diagnostic for that rule. docs/analysis.md is the
// catalogue of diagnostics.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.h"
#include "analysis/rule_file.h"
#include "event/registry.h"
#include "snoop/parser.h"

namespace sentineld {
namespace {

int Usage() {
  std::cerr << "usage: sentinel-lint [--context=<ctx>] "
               "[--interval-policy=<point|interval>] "
               "[--timebase=<approx|hlc|vector>] [--werror] [--quiet] "
               "[--catalogue] [--report-json[=<path>]] [--top-k=<n>] "
               "(<file.rules>... | --expr '<expression>')\n";
  return 2;
}

bool ParseContext(std::string_view name, ParamContext& out) {
  if (name == "unrestricted") out = ParamContext::kUnrestricted;
  else if (name == "recent") out = ParamContext::kRecent;
  else if (name == "chronicle") out = ParamContext::kChronicle;
  else if (name == "continuous") out = ParamContext::kContinuous;
  else if (name == "cumulative") out = ParamContext::kCumulative;
  else return false;
  return true;
}

int Run(int argc, char** argv) {
  LintOptions options;
  options.context = ParamContext::kRecent;  // RuleSpec's default
  bool werror = false;
  bool quiet = false;
  bool catalogue = false;
  bool report_json = false;
  std::string report_path;
  size_t top_k = 10;
  std::vector<std::string> files;
  std::vector<std::string> exprs;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--context=", 0) == 0) {
      if (!ParseContext(arg.substr(10), options.context)) return Usage();
    } else if (arg.rfind("--interval-policy=", 0) == 0) {
      const std::string_view policy = arg.substr(18);
      if (policy == "point") {
        options.interval_policy = IntervalPolicy::kPointBased;
      } else if (policy == "interval") {
        options.interval_policy = IntervalPolicy::kIntervalBased;
      } else {
        return Usage();
      }
    } else if (arg.rfind("--timebase=", 0) == 0) {
      Result<TimebaseKind> kind = ParseTimebaseKind(arg.substr(11));
      if (!kind.ok()) return Usage();
      options.timebase = *kind;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--catalogue") {
      catalogue = true;
    } else if (arg == "--report-json") {
      report_json = true;
    } else if (arg.rfind("--report-json=", 0) == 0) {
      report_json = true;
      report_path = std::string(arg.substr(14));
    } else if (arg.rfind("--top-k=", 0) == 0) {
      top_k = 0;
      for (const char c : arg.substr(8)) {
        if (c < '0' || c > '9') return Usage();
        top_k = top_k * 10 + static_cast<size_t>(c - '0');
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--expr") {
      if (++i >= argc) return Usage();
      exprs.emplace_back(argv[i]);
    } else if (!arg.empty() && arg.front() == '-') {
      return Usage();
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty() && exprs.empty()) return Usage();

  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;

  for (const std::string& text : exprs) {
    EventTypeRegistry registry;
    ParserOptions parser_options;
    parser_options.auto_register = true;
    Result<ExprPtr> expr = ParseExpr(text, registry, parser_options);
    if (!expr.ok()) {
      std::cout << "<expr>: error SL001 expression does not parse: "
                << expr.status().message() << "\n";
      ++errors;
      continue;
    }
    for (const Diagnostic& d : LintExpr(*expr, registry, options)) {
      std::cout << "<expr>: " << FormatDiagnostic(d) << "\n";
      if (d.severity == LintSeverity::kError) ++errors;
      if (d.severity == LintSeverity::kWarning) ++warnings;
      if (d.severity == LintSeverity::kNote) ++notes;
    }
  }

  CatalogueOptions catalogue_options;
  catalogue_options.context = options.context;
  catalogue_options.top_k = top_k;
  CatalogueAnalyzer analyzer(catalogue_options);

  // Catalogue mode reads every file up front: producer declarations may
  // live in any file and must all be known before the first rule.
  std::vector<std::string> contents;
  if (catalogue) {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot read rule file '" << path << "'\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      contents.push_back(buffer.str());
      DeclareProducersFromSource(contents.back(), analyzer);
    }
  }

  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i];
    RuleFileReport report;
    if (catalogue) {
      report = AnalyzeCatalogueSource(contents[i], options, path, analyzer);
    } else {
      Result<RuleFileReport> read = LintRuleFile(path, options);
      if (!read.ok()) {
        std::cerr << read.status() << "\n";
        return 2;
      }
      report = std::move(*read);
    }
    const bool failing = !report.Passes(werror);
    if (!quiet || failing) std::cout << report.Format(path);
    errors += report.errors;
    warnings += report.warnings;
    notes += report.notes;
  }

  if (catalogue) {
    // Cross-rule findings (all kWarning) after the per-file reports.
    warnings += analyzer.findings().size();
    const bool failing = werror && !analyzer.findings().empty();
    if (!quiet || failing) {
      std::cout << FormatCatalogueFindings(analyzer.findings());
      std::cout << "catalogue: " << analyzer.rules() << " rule(s), "
                << analyzer.findings().size() << " cross-rule finding(s), "
                << analyzer.suppressed_findings() << " suppressed\n";
    }
    if (report_json) {
      const std::string json = analyzer.ReportJson();
      if (report_path.empty()) {
        std::cout << json;
      } else {
        std::ofstream out(report_path);
        out << json;
        if (!out) {
          std::cerr << "cannot write report '" << report_path << "'\n";
          return 2;
        }
      }
    }
  }

  if (errors > 0 || (werror && warnings > 0)) return 1;
  if (!quiet && errors + warnings + notes == 0) {
    std::cout << "sentinel-lint: clean\n";
  }
  return 0;
}

}  // namespace
}  // namespace sentineld

int main(int argc, char** argv) { return sentineld::Run(argc, argv); }
