#ifndef SENTINELD_ANALYSIS_CATALOGUE_H_
#define SENTINELD_ANALYSIS_CATALOGUE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "event/registry.h"
#include "snoop/ast.h"
#include "snoop/canonical.h"
#include "snoop/context.h"

namespace sentineld {

/// Whole-catalogue static analysis (sentinel-lint --catalogue): where
/// LintExpr looks at one rule in isolation, the CatalogueAnalyzer looks
/// ACROSS all registered rules. It canonically hash-conses every
/// subexpression into a shared-subtree DAG (the blueprint for the
/// ROADMAP-3 shared-subexpression detection graph), maintains an
/// event-name dispatch index (the ROADMAP-3 predicate-index prototype),
/// bounds each rule's retained state with a per-operator static cost
/// model, and emits the cross-rule diagnostics SL012-SL015.
///
/// Complexity: rules are ingested incrementally and every per-rule cost
/// is O(size of that rule's tree) amortized — hash-consing, the
/// duplicate/subsumption probes, and the cost model all key on interned
/// subtree ids — so analyzing a catalogue stays near O(total
/// subexpressions) and runs on 100k-rule catalogues in CI
/// (bench/bench_analysis.cpp pins the scaling).

/// One rule's identity inside a catalogue, for diagnostics that must
/// name both sides of a pairwise finding.
struct CatalogueRuleRef {
  std::string name;
  std::string file;   ///< empty for programmatic registration
  size_t line = 0;    ///< 0 for programmatic registration
  size_t column = 0;  ///< 1-based column of the rule's expression text
};

/// A cross-rule finding: the diagnostic plus the rules involved. The
/// primary span is the LATER rule (the one whose registration surfaced
/// the finding); for pairwise findings (SL012/SL013) `related` points at
/// the earlier rule, rendered as a trailing "note:" line.
struct CatalogueFinding {
  Diagnostic diagnostic;
  CatalogueRuleRef rule;
  CatalogueRuleRef related;  ///< name empty when not pairwise

  bool pairwise() const { return !related.name.empty(); }
};

/// One entry of the sharing report's top-K list: a subtree appearing in
/// several places across the catalogue.
struct SharedSubtree {
  std::string expr;    ///< canonical text
  uint64_t hash = 0;   ///< 64-bit canonical hash (CanonicalHash)
  size_t count = 0;    ///< instances across all rule trees
  size_t size = 0;     ///< nodes in one instance of the subtree
};

/// The canonical-hash sharing report: how much of the catalogue is
/// redundant subexpression structure. `unique_subtrees` is exactly the
/// node count of the shared-subexpression DAG a ROADMAP-3 detection
/// graph would build, hence `predicted_dag_nodes`.
struct SharingReport {
  size_t rules = 0;
  size_t total_subtrees = 0;
  size_t unique_subtrees = 0;
  size_t predicted_dag_nodes = 0;  ///< == unique_subtrees
  size_t hash_collisions = 0;      ///< distinct subtrees sharing a 64-bit hash
  std::vector<SharedSubtree> top_shared;  ///< count >= 2, by count desc
};

/// Worst-case retained-state growth of one rule, from the per-operator
/// static cost model (see docs/analysis.md "Static cost model").
enum class StateBound {
  kConstant,      ///< O(1): stateless ops, or most-recent retention
  kWindowBounded, ///< O(open windows): consumed on detection
  kStreamLinear,  ///< O(n) in stream length: never consumed
};

const char* StateBoundToString(StateBound bound);

/// Static cost of one rule: worst-case state bound, how many operator
/// nodes hold state, and the dispatch fan-out (distinct primitive event
/// names — the number of index entries that point at this rule).
struct RuleCost {
  CatalogueRuleRef rule;
  StateBound state_bound = StateBound::kConstant;
  size_t state_ops = 0;
  size_t fanout = 0;
};

/// One entry of the event-name dispatch index: how many rules an
/// occurrence of `event` must be routed to.
struct EventIndexEntry {
  std::string event;
  size_t rules = 0;
};

struct CatalogueOptions {
  /// Parameter context the catalogue's rules run under; drives the cost
  /// model and SL015 (only the non-consuming kUnrestricted context
  /// retains O(n) state). AddRule can override per rule.
  ParamContext context = ParamContext::kUnrestricted;
  /// Entries in the sharing report's and event index's top-K lists.
  size_t top_k = 10;
};

// CanonicalHash(expr, registry) — the 64-bit canonical hash behind the
// sharing report — is declared in snoop/canonical.h (re-exported by the
// include above): the runtime SharedDetector interns with the same
// formula, which is what makes `predicted_dag_nodes` a prediction OF
// something (docs/catalogue-scale.md).

/// Renders one catalogue finding as rule-file-style diagnostic lines:
///
///   <file>:<line>:<col>: rule `<name>`: <FormatDiagnostic text>
///   <file>:<line>:<col>: note: earlier rule `<other>` defined here
///
/// (the note line only for pairwise findings). Programmatic rules (empty
/// file) render as "<catalogue>". Pinned by tests/golden/catalogue.*.
std::string FormatCatalogueFinding(const CatalogueFinding& finding);

/// One FormatCatalogueFinding block per entry.
std::string FormatCatalogueFindings(std::span<const CatalogueFinding> findings);

/// The incremental whole-catalogue analyzer. Feed rules in registration
/// order; each AddRule analyzes the new rule against everything added
/// before it and returns (and retains) the new findings. Both services'
/// DefineRule paths hold one per deployment; sentinel-lint --catalogue
/// holds one across all input files.
class CatalogueAnalyzer {
 public:
  explicit CatalogueAnalyzer(CatalogueOptions options = {});

  /// Declares an event name some producer emits (SL014). Until the
  /// first declaration, SL014 is disabled — an undeclared catalogue
  /// cannot distinguish "no producer" from "not declared".
  void DeclareProducer(std::string_view event_name);
  bool has_producer_declarations() const { return has_producers_; }

  /// Ingests one rule: interns every subexpression of `expr` into the
  /// shared-subtree DAG, indexes its primitive event names, computes its
  /// static cost, and emits cross-rule findings against earlier rules.
  /// `suppressed` lists "SLnnn" ids silenced for THIS rule; a pairwise
  /// finding is silenced when EITHER involved rule suppresses its id.
  /// `context` overrides the catalogue-wide context for this rule.
  std::vector<CatalogueFinding> AddRule(
      const CatalogueRuleRef& ref, const ExprPtr& expr,
      const EventTypeRegistry& registry,
      std::span<const std::string> suppressed = {});
  std::vector<CatalogueFinding> AddRule(
      const CatalogueRuleRef& ref, const ExprPtr& expr,
      const EventTypeRegistry& registry, ParamContext context,
      std::span<const std::string> suppressed);

  /// All findings so far, in registration order.
  const std::vector<CatalogueFinding>& findings() const { return findings_; }

  /// Pairwise findings silenced by a suppression on either rule.
  size_t suppressed_findings() const { return suppressed_findings_; }

  /// Static costs, one entry per ingested rule, in registration order.
  const std::vector<RuleCost>& costs() const { return costs_; }

  size_t rules() const { return costs_.size(); }

  /// The sharing report over everything ingested so far.
  SharingReport Sharing() const;

  /// The event-name dispatch index, fan-out descending then name
  /// ascending, truncated to `top_k` entries (0 = all).
  std::vector<EventIndexEntry> EventIndex(size_t top_k) const;

  size_t distinct_event_names() const { return names_.size(); }

  /// The machine-readable report (schema "sentineld-catalogue-v1",
  /// validated by tools/check_catalogue_report.py; documented in
  /// docs/analysis.md).
  std::string ReportJson() const;

 private:
  struct NodeInfo {
    OpKind kind = OpKind::kPrimitive;
    int64_t period = 0;
    int threshold = 0;
    uint32_t name = 0;  ///< interned primitive name (primitives only)
    std::vector<uint32_t> children;  ///< unique ids; commutative: sorted
    uint64_t hash = 0;        ///< 64-bit canonical hash
    uint64_t shape_hash = 0;  ///< hash with ANY-threshold / P-period wildcarded
    uint32_t size = 0;        ///< nodes in one instance of this subtree
    uint32_t count = 0;       ///< instances across the catalogue
  };

  /// Subset relation between two interned subtrees (SL013): kWider
  /// means every history detecting `b` also detects `a`.
  enum class Rel { kEqual, kWider, kNarrower, kIncomparable };

  uint32_t InternName(std::string_view name);
  uint32_t InternNode(NodeInfo info);
  /// Interns `expr` bottom-up; returns the root's unique id.
  uint32_t Intern(const ExprPtr& expr, const EventTypeRegistry& registry);
  static Rel Merge(Rel a, Rel b);
  Rel Compare(uint32_t a, uint32_t b) const;
  std::string NodeText(uint32_t id) const;
  /// The disjunct set of an or-chain rooted at `id` (the id itself when
  /// not an Or node).
  void OrClosure(uint32_t id, std::vector<uint32_t>& out) const;

  void CheckDuplicateAndSubsumed(const CatalogueRuleRef& ref, uint32_t root,
                                 const ExprPtr& expr,
                                 std::span<const std::string> suppressed,
                                 std::vector<CatalogueFinding>& out);
  void CheckUnknownNames(const CatalogueRuleRef& ref, const ExprPtr& expr,
                         const EventTypeRegistry& registry,
                         std::span<const std::string> suppressed,
                         std::vector<CatalogueFinding>& out);
  void CheckUnboundedState(const CatalogueRuleRef& ref, const ExprPtr& expr,
                           const EventTypeRegistry& registry,
                           ParamContext context, const RuleCost& cost,
                           std::span<const std::string> suppressed,
                           std::vector<CatalogueFinding>& out);

  CatalogueOptions options_;

  // --- shared-subtree DAG (hash-consing) ---
  std::vector<NodeInfo> nodes_;  ///< by unique id
  std::unordered_map<uint64_t, std::vector<uint32_t>> intern_;  ///< hash -> ids
  size_t total_subtrees_ = 0;
  size_t hash_collisions_ = 0;

  // --- name interning + event-name dispatch index ---
  std::vector<std::string> names_;  ///< by interned name id
  std::unordered_map<std::string, uint32_t> name_ids_;
  std::vector<uint32_t> name_rule_count_;  ///< rules referencing the name
  std::vector<uint32_t> name_last_rule_;   ///< dedup within one rule

  // --- per-rule records for pairwise diagnostics ---
  struct RuleRecord {
    CatalogueRuleRef ref;
    uint32_t root = 0;
    std::vector<std::string> suppressed;
  };
  std::vector<RuleRecord> rule_records_;
  std::unordered_map<uint32_t, uint32_t> first_rule_with_root_;
  /// Subtree id -> first rule holding it as a PROPER disjunct of its
  /// root's or-chain.
  std::unordered_map<uint32_t, uint32_t> first_rule_with_disjunct_;
  /// Shape hash -> rules probed for threshold/period widening. Buckets
  /// are probe-capped so adversarial same-shape catalogues stay linear.
  std::unordered_map<uint64_t, std::vector<uint32_t>> shape_buckets_;

  // --- producers (SL014) ---
  bool has_producers_ = false;
  std::vector<bool> name_is_producer_;  ///< by interned name id

  // --- outputs ---
  std::vector<CatalogueFinding> findings_;
  std::vector<RuleCost> costs_;
  size_t suppressed_findings_ = 0;
};

}  // namespace sentineld

#endif  // SENTINELD_ANALYSIS_CATALOGUE_H_
