#ifndef SENTINELD_ANALYSIS_LINT_H_
#define SENTINELD_ANALYSIS_LINT_H_

#include <vector>

#include "analysis/diagnostics.h"
#include "event/registry.h"
#include "snoop/ast.h"
#include "snoop/context.h"
#include "timebase/timebase.h"

namespace sentineld {

/// Deployment knobs the analyzer checks the expression against: the
/// diagnostics about context/operator mismatches and the point-based
/// sequence anomaly depend on how the rule will actually run.
struct LintOptions {
  /// Parameter context the rule will be registered under.
  ParamContext context = ParamContext::kUnrestricted;
  /// Eligibility policy of the hosting detector (snoop/context.h).
  IntervalPolicy interval_policy = IntervalPolicy::kPointBased;
  /// Ordering backend the deployment runs on (docs/timebase.md). Under
  /// kVector, causally-unrelated cross-site occurrences are concurrent,
  /// so order-sensitive operators silently never fire across sites —
  /// SL016 flags rules exposed to that degradation.
  TimebaseKind timebase = TimebaseKind::kApproxGlobal;
  /// Diagnostic ids ("SL005", ...) to drop from the result — the
  /// programmatic form of a rule-file inline suppression.
  std::vector<std::string> suppressed;
};

/// Statically analyzes a validated rule expression and returns every
/// finding, in pre-order position of the flagged node (outermost first),
/// errors before warnings before notes at the same node.
///
/// The checks are purely structural — no occurrence stream is consulted —
/// and each finding cites the paper definition it rests on; docs/analysis.md
/// is the catalogue. The analyzer never mutates `expr` and accepts any
/// tree ValidateExpr accepts (including programmatically built ones
/// without source spans).
std::vector<Diagnostic> LintExpr(const ExprPtr& expr,
                                 const EventTypeRegistry& registry,
                                 const LintOptions& options = {});

}  // namespace sentineld

#endif  // SENTINELD_ANALYSIS_LINT_H_
