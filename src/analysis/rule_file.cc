#include "analysis/rule_file.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "event/registry.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Extracts "SLnnn" ids from a `# lint-suppress: SL008, SL005 ...`
/// trailing comment; everything after the ids is free-form rationale.
std::vector<std::string> ParseSuppressions(std::string_view comment) {
  std::vector<std::string> ids;
  constexpr std::string_view kTag = "lint-suppress:";
  const size_t tag = comment.find(kTag);
  if (tag == std::string_view::npos) return ids;
  std::string_view rest = comment.substr(tag + kTag.size());
  size_t i = 0;
  while (i < rest.size()) {
    const size_t sl = rest.find("SL", i);
    if (sl == std::string_view::npos) break;
    size_t end = sl + 2;
    while (end < rest.size() &&
           std::isdigit(static_cast<unsigned char>(rest[end]))) {
      ++end;
    }
    if (end > sl + 2) ids.emplace_back(rest.substr(sl, end - sl));
    i = end;
  }
  return ids;
}

/// Shared per-line loop of LintRuleSource / AnalyzeCatalogueSource; the
/// catalogue entry points additionally feed each parsed rule into
/// `analyzer` (nullptr for plain per-rule linting).
RuleFileReport LintRuleSourceImpl(std::string_view content,
                                  const LintOptions& options,
                                  const TimebaseConfig& timebase,
                                  std::string_view filename,
                                  CatalogueAnalyzer* analyzer) {
  RuleFileReport report;
  std::istringstream lines{std::string(content)};
  std::string raw;
  size_t line_number = 0;
  while (std::getline(lines, raw)) {
    ++line_number;
    std::string_view line = raw;

    // Split off the trailing comment (expressions never contain '#').
    std::string_view comment;
    if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
      comment = line.substr(hash + 1);
      line = line.substr(0, hash);
    }
    if (Trim(line).empty()) continue;

    LintedRule rule;
    rule.line = line_number;
    // `name : expression` — ':' is not an expression token, so the first
    // one (if any) is the separator.
    std::string_view expr_text = line;
    if (const size_t colon = line.find(':'); colon != std::string_view::npos) {
      rule.name = std::string(Trim(line.substr(0, colon)));
      expr_text = line.substr(colon + 1);
    }
    if (rule.name.empty()) rule.name = StrCat("line", line_number);

    // Column (1-based) where the expression text begins, so diagnostic
    // spans (expression-relative) can be mapped back into the file line.
    const size_t expr_offset =
        static_cast<size_t>(expr_text.data() - raw.data());
    std::string_view trimmed = Trim(expr_text);
    rule.expr_column =
        expr_offset + static_cast<size_t>(trimmed.data() - expr_text.data())
        + 1;
    rule.expr_text = std::string(trimmed);

    // Each catalogue line parses against a fresh registry: catalogues are
    // self-contained and must not leak types across rules of different
    // deployments.
    EventTypeRegistry registry;
    ParserOptions parser_options;
    parser_options.auto_register = true;
    parser_options.timebase = timebase;
    LintOptions rule_options = options;
    for (std::string& id : ParseSuppressions(comment)) {
      rule_options.suppressed.push_back(std::move(id));
    }
    Result<ExprPtr> expr =
        ParseExpr(rule.expr_text, registry, parser_options);
    if (!expr.ok()) {
      Diagnostic d;
      d.id = LintId::kParseError;
      d.severity = LintSeverity::kError;
      d.message = StrCat("expression does not parse: ",
                         expr.status().message());
      rule.diagnostics.push_back(std::move(d));
    } else {
      rule.diagnostics = LintExpr(*expr, registry, rule_options);
      if (analyzer != nullptr) {
        CatalogueRuleRef ref;
        ref.name = rule.name;
        ref.file = std::string(filename);
        ref.line = rule.line;
        ref.column = rule.expr_column;
        analyzer->AddRule(ref, *expr, registry, rule_options.context,
                          rule_options.suppressed);
      }
    }
    for (const Diagnostic& d : rule.diagnostics) {
      switch (d.severity) {
        case LintSeverity::kError:
          ++report.errors;
          break;
        case LintSeverity::kWarning:
          ++report.warnings;
          break;
        case LintSeverity::kNote:
          ++report.notes;
          break;
      }
    }
    report.rules.push_back(std::move(rule));
  }
  return report;
}

}  // namespace

RuleFileReport LintRuleSource(std::string_view content,
                              const LintOptions& options,
                              const TimebaseConfig& timebase) {
  return LintRuleSourceImpl(content, options, timebase, "", nullptr);
}

size_t DeclareProducersFromSource(std::string_view content,
                                  CatalogueAnalyzer& analyzer) {
  constexpr std::string_view kTag = "producers:";
  size_t declared = 0;
  std::istringstream lines{std::string(content)};
  std::string raw;
  while (std::getline(lines, raw)) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() != '#') continue;
    line = Trim(line.substr(1));
    if (!StartsWith(line, kTag)) continue;
    line = line.substr(kTag.size());
    // Comma/whitespace-separated event names.
    size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             (line[i] == ',' ||
              std::isspace(static_cast<unsigned char>(line[i])))) {
        ++i;
      }
      const size_t start = i;
      while (i < line.size() && line[i] != ',' &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i > start) {
        analyzer.DeclareProducer(line.substr(start, i - start));
        ++declared;
      }
    }
  }
  return declared;
}

RuleFileReport AnalyzeCatalogueSource(std::string_view content,
                                      const LintOptions& options,
                                      std::string_view filename,
                                      CatalogueAnalyzer& analyzer,
                                      const TimebaseConfig& timebase) {
  return LintRuleSourceImpl(content, options, timebase, filename, &analyzer);
}

std::string RuleFileReport::Format(std::string_view filename) const {
  std::string out;
  for (const LintedRule& rule : rules) {
    for (const Diagnostic& d : rule.diagnostics) {
      const size_t column =
          d.has_span() ? rule.expr_column + d.begin : rule.expr_column;
      out += StrCat(filename, ":", rule.line, ":", column, ": rule `",
                    rule.name, "`: ", FormatDiagnostic(d), "\n");
    }
  }
  out += StrCat(filename, ": ", rules.size(), " rule(s), ", errors,
                " error(s), ", warnings, " warning(s), ", notes,
                " note(s)\n");
  return out;
}

Result<RuleFileReport> LintRuleFile(const std::string& path,
                                    const LintOptions& options,
                                    const TimebaseConfig& timebase) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot read rule file '", path, "'"));
  }
  std::ostringstream content;
  content << in.rdbuf();
  return LintRuleSource(content.str(), options, timebase);
}

}  // namespace sentineld
