#ifndef SENTINELD_ANALYSIS_RULE_FILE_H_
#define SENTINELD_ANALYSIS_RULE_FILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/catalogue.h"
#include "analysis/lint.h"
#include "snoop/parser.h"
#include "util/status.h"

namespace sentineld {

/// A `.rules` catalogue: one rule per non-blank line,
///
///   # full-line comment
///   <name> : <expression>        # optional trailing comment
///   <expression>                 # unnamed rule
///
/// A trailing comment of the form `# lint-suppress: SL008, SL005 <why>`
/// drops those diagnostic ids for that rule only — the inline suppression
/// the CI lint gate requires next to any finding that is intentional.
/// Identifiers are auto-registered (catalogues are self-contained).
struct LintedRule {
  std::string name;       ///< declared name, or "line<N>" when unnamed
  size_t line = 0;        ///< 1-based line number in the source
  size_t expr_column = 0; ///< 1-based column where the expression starts
  std::string expr_text;
  std::vector<Diagnostic> diagnostics;
};

/// Result of linting one rule file.
struct RuleFileReport {
  std::vector<LintedRule> rules;
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;

  /// True when the file passes the gate: no errors, and no warnings
  /// either when `werror` is set (notes never fail).
  bool Passes(bool werror) const {
    return errors == 0 && (!werror || warnings == 0);
  }

  /// Renders "<file>:<line>:<col>: rule `<name>`: <diagnostic>" lines
  /// (columns are 1-based within the file line) followed by a one-line
  /// summary. This exact text is pinned by the golden-output tests.
  std::string Format(std::string_view filename) const;
};

/// Lints every rule in `content` under `options`; `timebase` converts
/// duration literals. Returns an error only when the file itself is
/// unreadable as a catalogue (individual unparsable rules become SL001
/// diagnostics, not a failed call).
RuleFileReport LintRuleSource(std::string_view content,
                              const LintOptions& options,
                              const TimebaseConfig& timebase = {});

/// Reads and lints `path`; NotFound/InvalidArgument when unreadable.
Result<RuleFileReport> LintRuleFile(const std::string& path,
                                    const LintOptions& options,
                                    const TimebaseConfig& timebase = {});

/// Declares every event name found in full-line
///
///   # producers: name1, name2, ...
///
/// comments of `content` into `analyzer` (enabling SL014); returns how
/// many names were declared. Run this over EVERY file of a multi-file
/// catalogue before any AnalyzeCatalogueSource call, so declaration
/// order never matters.
size_t DeclareProducersFromSource(std::string_view content,
                                  CatalogueAnalyzer& analyzer);

/// LintRuleSource plus whole-catalogue analysis: every parseable rule is
/// additionally fed into `analyzer` in file order (labelled `filename`
/// inside cross-file findings). Per-rule diagnostics land in the
/// returned report exactly as LintRuleSource; cross-rule findings
/// accumulate in `analyzer` (analyzer.findings()), each at kWarning
/// severity. The rule's inline `# lint-suppress:` ids silence catalogue
/// findings too — for pairwise SL012/SL013, a suppression on EITHER
/// involved rule.
RuleFileReport AnalyzeCatalogueSource(std::string_view content,
                                      const LintOptions& options,
                                      std::string_view filename,
                                      CatalogueAnalyzer& analyzer,
                                      const TimebaseConfig& timebase = {});

}  // namespace sentineld

#endif  // SENTINELD_ANALYSIS_RULE_FILE_H_
