#ifndef SENTINELD_ANALYSIS_DIAGNOSTICS_H_
#define SENTINELD_ANALYSIS_DIAGNOSTICS_H_

#include <span>
#include <string>
#include <vector>

namespace sentineld {

/// Severity of a static-analysis finding.
///
///   kError   — the rule is malformed: under the paper's semantics it can
///              never (or only degenerately) detect, or it violates a
///              documented operator contract. Rule registration rejects
///              these (see SentinelService::DefineRule) unless the rule
///              opts out.
///   kWarning — the rule is well-formed but almost certainly not what the
///              author meant, or it is exposed to a documented semantic
///              pitfall (e.g. the point-based sequence anomaly).
///   kNote    — style/clarity: a declared knob has no effect, or an
///              equivalent simpler spelling exists.
enum class LintSeverity { kNote, kWarning, kError };

const char* LintSeverityToString(LintSeverity severity);

/// Stable identifiers of the diagnostics sentinel-lint can emit; the
/// catalogue (one entry per kind, with the paper definition it enforces)
/// lives in docs/analysis.md.
enum class LintId {
  kParseError,               // SL001
  kInvertedWindow,           // SL002
  kIdenticalWindowEndpoints, // SL003
  kDuplicateAnyConstituent,  // SL004
  kDuplicateOperand,         // SL005
  kNotMiddleIsEndpoint,      // SL006
  kMiddleRequiresTerminator, // SL007
  kPointPolicyAnomaly,       // SL008
  kContextNoEffect,          // SL009
  kCumulativeNoAccumulator,  // SL010
  kCollapsibleAny,           // SL011
  // Catalogue-level (cross-rule) diagnostics, emitted by the whole-
  // catalogue analyzer (analysis/catalogue.h), not by LintExpr.
  kDuplicateRule,            // SL012
  kSubsumedRule,             // SL013
  kUnknownEventName,         // SL014
  kUnboundedState,           // SL015
  // Per-rule again (LintExpr), but deployment-dependent: only emitted
  // when LintOptions::timebase names a backend whose ordering degrades
  // the flagged operator (docs/timebase.md).
  kConcurrentUnderLogicalClock, // SL016
};

/// The "SLnnn" code of a diagnostic kind.
const char* LintIdToString(LintId id);

/// One static-analysis finding against a rule expression.
struct Diagnostic {
  LintId id = LintId::kParseError;
  LintSeverity severity = LintSeverity::kError;
  /// Human-readable statement of the problem (one line, no trailing
  /// period-newline; the formatter appends location and citation).
  std::string message;
  /// The paper (or related-work) definition/theorem the finding rests
  /// on, e.g. "Def 5.1 (max set)".
  std::string citation;
  /// Source span [begin, end) in the rule-expression text; equal (both
  /// zero) when the expression was built programmatically and carries no
  /// spans.
  size_t begin = 0;
  size_t end = 0;
  /// Path of child indices from the expression root to the flagged node
  /// (empty = the root itself); resolvable with SubexprAt.
  std::vector<size_t> path;
  /// Canonical text of the flagged subexpression.
  std::string subexpr;

  bool has_span() const { return end > begin; }
};

/// True if any diagnostic is at kError severity.
bool HasLintErrors(std::span<const Diagnostic> diagnostics);

/// Renders one diagnostic as
///   "<severity> SLnnn [<begin>-<end>] <message>: `<subexpr>` (cites ...)"
/// omitting the span when absent and the citation when empty.
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// One FormatDiagnostic line per entry, each terminated with '\n'.
std::string FormatDiagnostics(std::span<const Diagnostic> diagnostics);

}  // namespace sentineld

#endif  // SENTINELD_ANALYSIS_DIAGNOSTICS_H_
