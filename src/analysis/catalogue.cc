#include "analysis/catalogue.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "snoop/canonical.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

/// At most this many same-shape earlier rules are probed for the SL013
/// threshold/period widening check, so adversarial catalogues where
/// every rule shares one shape stay O(total subexpressions).
constexpr size_t kMaxShapeProbes = 8;

// The canonical hash formula (Mix/Combine/HashString/HashNode) lives in
// snoop/canonical.h, shared with the runtime SharedDetector so the
// static sharing report and the runtime DAG intern identically.
using canonical::Commutative;
using canonical::HashNode;
using canonical::HashString;

/// Whether the operator retains constituent occurrences between inputs
/// (snoop/node.h: buffers, initiator lists, open windows). Stateless:
/// primitives and OR (both re-type and forward).
bool Stateful(OpKind kind) {
  return kind != OpKind::kPrimitive && kind != OpKind::kOr;
}

/// Whether the operator ACCUMULATES under the non-consuming
/// kUnrestricted context: every buffered occurrence stays eligible
/// forever (the paper's Sec. 5.3 declarative semantics), so retained
/// state grows with stream length. PLUS is the exception: its pending
/// list drains when the offset timer fires regardless of context.
bool Accumulating(OpKind kind) {
  return Stateful(kind) && kind != OpKind::kPlus;
}

void Escape(std::string_view in, std::string& out) {
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string HexHash(uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

const char* StateBoundToString(StateBound bound) {
  switch (bound) {
    case StateBound::kConstant:
      return "O(1)";
    case StateBound::kWindowBounded:
      return "O(windows)";
    case StateBound::kStreamLinear:
      return "O(n)";
  }
  return "?";
}

std::string FormatCatalogueFinding(const CatalogueFinding& finding) {
  const Diagnostic& d = finding.diagnostic;
  const auto file = [](const CatalogueRuleRef& ref) -> std::string_view {
    return ref.file.empty() ? std::string_view("<catalogue>") : ref.file;
  };
  const size_t base = finding.rule.column > 0 ? finding.rule.column : 1;
  const size_t column = d.has_span() ? base + d.begin : base;
  std::string out =
      StrCat(file(finding.rule), ":", finding.rule.line, ":", column,
             ": rule `", finding.rule.name, "`: ", FormatDiagnostic(d), "\n");
  if (finding.pairwise()) {
    out += StrCat(file(finding.related), ":", finding.related.line, ":",
                  finding.related.column > 0 ? finding.related.column : 1,
                  ": note: earlier rule `", finding.related.name,
                  "` defined here\n");
  }
  return out;
}

std::string FormatCatalogueFindings(
    std::span<const CatalogueFinding> findings) {
  std::string out;
  for (const CatalogueFinding& finding : findings) {
    out += FormatCatalogueFinding(finding);
  }
  return out;
}

CatalogueAnalyzer::CatalogueAnalyzer(CatalogueOptions options)
    : options_(options) {}

void CatalogueAnalyzer::DeclareProducer(std::string_view event_name) {
  has_producers_ = true;
  const uint32_t id = InternName(event_name);
  name_is_producer_[id] = true;
}

uint32_t CatalogueAnalyzer::InternName(std::string_view name) {
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  name_rule_count_.push_back(0);
  name_last_rule_.push_back(UINT32_MAX);
  name_is_producer_.push_back(false);
  return id;
}

uint32_t CatalogueAnalyzer::InternNode(NodeInfo info) {
  std::vector<uint32_t>& bucket = intern_[info.hash];
  for (const uint32_t id : bucket) {
    const NodeInfo& have = nodes_[id];
    if (have.kind == info.kind && have.period == info.period &&
        have.threshold == info.threshold && have.name == info.name &&
        have.children == info.children) {
      ++nodes_[id].count;
      return id;
    }
  }
  // Same 64-bit hash, canonically different subtree: a genuine hash
  // collision (exact interning keeps the analysis correct regardless).
  if (!bucket.empty()) ++hash_collisions_;
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  info.count = 1;
  nodes_.push_back(std::move(info));
  bucket.push_back(id);
  return id;
}

uint32_t CatalogueAnalyzer::Intern(const ExprPtr& expr,
                                   const EventTypeRegistry& registry) {
  ++total_subtrees_;
  NodeInfo info;
  info.kind = expr->kind;
  info.period = expr->period_ticks;
  info.threshold = expr->any_threshold;
  info.size = 1;
  uint64_t name_hash = 0;
  if (expr->kind == OpKind::kPrimitive) {
    const std::string name = registry.NameOf(expr->primitive_type);
    info.name = InternName(name);
    name_hash = HashString(name);
  }
  std::vector<uint64_t> child_hashes;
  std::vector<uint64_t> child_shapes;
  child_hashes.reserve(expr->children.size());
  child_shapes.reserve(expr->children.size());
  for (const ExprPtr& child : expr->children) {
    const uint32_t child_id = Intern(child, registry);
    info.children.push_back(child_id);
    info.size += nodes_[child_id].size;
    child_hashes.push_back(nodes_[child_id].hash);
    child_shapes.push_back(nodes_[child_id].shape_hash);
  }
  // Commutative operands sort by unique id: canonically equal trees have
  // equal child-id multisets, so the sorted sequence is a canonical key.
  if (Commutative(expr->kind)) {
    std::sort(info.children.begin(), info.children.end());
  }
  info.hash = HashNode(expr->kind, info.period, info.threshold, name_hash,
                       std::move(child_hashes));
  // The shape hash wildcards the SL013 widening knobs: the ANY threshold
  // and the P/P* period.
  const int64_t shape_period =
      (expr->kind == OpKind::kPeriodic || expr->kind == OpKind::kPeriodicStar)
          ? 0
          : info.period;
  const int shape_threshold = expr->kind == OpKind::kAny ? 0 : info.threshold;
  info.shape_hash = HashNode(expr->kind, shape_period, shape_threshold,
                             name_hash, std::move(child_shapes));
  return InternNode(std::move(info));
}

CatalogueAnalyzer::Rel CatalogueAnalyzer::Merge(Rel a, Rel b) {
  if (a == Rel::kEqual) return b;
  if (b == Rel::kEqual) return a;
  if (a == b) return a;
  return Rel::kIncomparable;
}

CatalogueAnalyzer::Rel CatalogueAnalyzer::Compare(uint32_t a,
                                                  uint32_t b) const {
  if (a == b) return Rel::kEqual;
  const NodeInfo& na = nodes_[a];
  const NodeInfo& nb = nodes_[b];
  if (na.kind != nb.kind || na.children.size() != nb.children.size()) {
    return Rel::kIncomparable;
  }
  switch (na.kind) {
    case OpKind::kPrimitive:
      // Distinct ids with equal names cannot exist (interning).
      return Rel::kIncomparable;
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kSeq:
    case OpKind::kAny: {
      // Monotone in every operand: widening any child widens the whole.
      Rel rel = Rel::kEqual;
      if (na.kind == OpKind::kAny) {
        // A LOWER threshold fires whenever a higher one does.
        if (na.threshold < nb.threshold) {
          rel = Rel::kWider;
        } else if (na.threshold > nb.threshold) {
          rel = Rel::kNarrower;
        }
      }
      for (size_t i = 0; i < na.children.size(); ++i) {
        rel = Merge(rel, Compare(na.children[i], nb.children[i]));
        if (rel == Rel::kIncomparable) return rel;
      }
      return rel;
    }
    case OpKind::kPlus: {
      // Same offset required; the initiator position is covariant.
      if (na.period != nb.period) return Rel::kIncomparable;
      return Compare(na.children[0], nb.children[0]);
    }
    case OpKind::kPeriodic: {
      // Identical endpoints, periods on nested grids: P(E1, pt, E3)
      // fires at t1 + n*p, so a period DIVIDING the other's fires at a
      // superset of ticks inside the same windows.
      if (na.children != nb.children) return Rel::kIncomparable;
      if (na.period == nb.period) return Rel::kIncomparable;  // a != b
      if (nb.period % na.period == 0) return Rel::kWider;
      if (na.period % nb.period == 0) return Rel::kNarrower;
      return Rel::kIncomparable;
    }
    case OpKind::kNot:
    case OpKind::kAperiodic:
    case OpKind::kAperiodicStar:
    case OpKind::kPeriodicStar:
      // Anti-monotone operand positions (forbidden middles, window
      // terminators): only exact equality is provable, and equal ids
      // were handled above.
      return Rel::kIncomparable;
  }
  return Rel::kIncomparable;
}

std::string CatalogueAnalyzer::NodeText(uint32_t id) const {
  const NodeInfo& node = nodes_[id];
  std::vector<std::string> parts;
  parts.reserve(node.children.size());
  for (const uint32_t child : node.children) {
    parts.push_back(NodeText(child));
  }
  // Interned children sort by id; canonical TEXT sorts by string
  // (CanonicalizeExpr), so re-sort for display.
  if (Commutative(node.kind)) std::sort(parts.begin(), parts.end());
  switch (node.kind) {
    case OpKind::kPrimitive:
      return names_[node.name];
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kSeq:
      return StrCat("(", parts[0], " ", OpKindToString(node.kind), " ",
                    parts[1], ")");
    case OpKind::kNot:
      return StrCat("not(", parts[0], ")[", parts[1], ", ", parts[2], "]");
    case OpKind::kAperiodic:
    case OpKind::kAperiodicStar:
      return StrCat(OpKindToString(node.kind), "(", parts[0], ", ", parts[1],
                    ", ", parts[2], ")");
    case OpKind::kPeriodic:
    case OpKind::kPeriodicStar:
      return StrCat(OpKindToString(node.kind), "(", parts[0], ", ",
                    node.period, "t, ", parts[1], ")");
    case OpKind::kPlus:
      return StrCat("(", parts[0], " + ", node.period, "t)");
    case OpKind::kAny:
      return StrCat("ANY(", node.threshold, ", ", Join(parts, ", "), ")");
  }
  return "?";
}

void CatalogueAnalyzer::OrClosure(uint32_t id,
                                  std::vector<uint32_t>& out) const {
  if (nodes_[id].kind != OpKind::kOr) {
    out.push_back(id);
    return;
  }
  for (const uint32_t child : nodes_[id].children) OrClosure(child, out);
}

std::vector<CatalogueFinding> CatalogueAnalyzer::AddRule(
    const CatalogueRuleRef& ref, const ExprPtr& expr,
    const EventTypeRegistry& registry,
    std::span<const std::string> suppressed) {
  return AddRule(ref, expr, registry, options_.context, suppressed);
}

std::vector<CatalogueFinding> CatalogueAnalyzer::AddRule(
    const CatalogueRuleRef& ref, const ExprPtr& expr,
    const EventTypeRegistry& registry, ParamContext context,
    std::span<const std::string> suppressed) {
  std::vector<CatalogueFinding> out;
  if (expr == nullptr || !ValidateExpr(expr).ok()) {
    // Malformed trees are per-rule lint's SL001 territory; the catalogue
    // ignores them entirely (they register no subtrees, costs, names).
    return out;
  }
  const uint32_t root = Intern(expr, registry);
  const uint32_t rule_index = static_cast<uint32_t>(rule_records_.size());

  // Static cost + the per-rule event-name set (fan-out and SL014), in
  // one walk.
  RuleCost cost;
  cost.rule = ref;
  bool accumulating = false;
  std::vector<std::pair<uint32_t, const Expr*>> new_names;
  std::vector<const Expr*> stack{expr.get()};
  while (!stack.empty()) {
    const Expr* node = stack.back();
    stack.pop_back();
    if (Stateful(node->kind)) ++cost.state_ops;
    if (Accumulating(node->kind)) accumulating = true;
    if (node->kind == OpKind::kPrimitive) {
      const uint32_t name_id =
          InternName(registry.NameOf(node->primitive_type));
      if (name_last_rule_[name_id] != rule_index) {
        name_last_rule_[name_id] = rule_index;
        ++name_rule_count_[name_id];
        ++cost.fanout;
        new_names.emplace_back(name_id, node);
      }
    }
    for (const ExprPtr& child : node->children) stack.push_back(child.get());
  }
  if (cost.state_ops == 0 || context == ParamContext::kRecent) {
    cost.state_bound = StateBound::kConstant;
  } else if (context == ParamContext::kUnrestricted && accumulating) {
    cost.state_bound = StateBound::kStreamLinear;
  } else {
    cost.state_bound = StateBound::kWindowBounded;
  }

  CheckDuplicateAndSubsumed(ref, root, expr, suppressed, out);
  CheckUnknownNames(ref, expr, registry, suppressed, out);
  CheckUnboundedState(ref, expr, registry, context, cost, suppressed, out);

  // Register the rule AFTER the checks so it never matches itself.
  RuleRecord record;
  record.ref = ref;
  record.root = root;
  record.suppressed.assign(suppressed.begin(), suppressed.end());
  rule_records_.push_back(std::move(record));
  first_rule_with_root_.emplace(root, rule_index);
  std::vector<uint32_t> disjuncts;
  OrClosure(root, disjuncts);
  if (disjuncts.size() > 1) {
    for (const uint32_t d : disjuncts) {
      first_rule_with_disjunct_.emplace(d, rule_index);
    }
  }
  std::vector<uint32_t>& bucket = shape_buckets_[nodes_[root].shape_hash];
  if (bucket.size() < kMaxShapeProbes) bucket.push_back(rule_index);

  costs_.push_back(std::move(cost));
  findings_.insert(findings_.end(), out.begin(), out.end());
  return out;
}

namespace {

bool Suppresses(std::span<const std::string> ids, LintId id) {
  const std::string_view code = LintIdToString(id);
  return std::find(ids.begin(), ids.end(), code) != ids.end();
}

}  // namespace

void CatalogueAnalyzer::CheckDuplicateAndSubsumed(
    const CatalogueRuleRef& ref, uint32_t root, const ExprPtr& expr,
    std::span<const std::string> suppressed,
    std::vector<CatalogueFinding>& out) {
  LintId id = LintId::kDuplicateRule;
  std::string message;
  std::string citation;
  const RuleRecord* other = nullptr;

  if (const auto dup = first_rule_with_root_.find(root);
      dup != first_rule_with_root_.end()) {
    other = &rule_records_[dup->second];
    message = StrCat("duplicate rule: canonically equal to earlier rule `",
                     other->ref.name,
                     "`, so both compile to the same detection graph node "
                     "and fire on identical histories");
    citation = "Thm 5.1 (canonical forms make equivalence decidable)";
  } else if (const auto sub = first_rule_with_disjunct_.find(root);
             sub != first_rule_with_disjunct_.end()) {
    other = &rule_records_[sub->second];
    id = LintId::kSubsumedRule;
    message = StrCat("subsumed rule: this expression is a disjunct of "
                     "earlier rule `",
                     other->ref.name,
                     "`, so every occurrence of this rule is already an "
                     "occurrence of that one");
    citation = "paper Sec. 5.3 (disjunction re-types its operand)";
  } else {
    std::vector<uint32_t> disjuncts;
    OrClosure(root, disjuncts);
    if (disjuncts.size() > 1) {
      for (const uint32_t d : disjuncts) {
        if (const auto hit = first_rule_with_root_.find(d);
            hit != first_rule_with_root_.end()) {
          other = &rule_records_[hit->second];
          id = LintId::kSubsumedRule;
          message = StrCat("subsumed rule: earlier rule `", other->ref.name,
                           "` is one of this rule's disjuncts, so it "
                           "matches a provable subset of this rule");
          citation = "paper Sec. 5.3 (disjunction re-types its operand)";
          break;
        }
      }
    }
    if (other == nullptr) {
      // Threshold/period widening against same-shape earlier rules.
      const auto bucket = shape_buckets_.find(nodes_[root].shape_hash);
      if (bucket != shape_buckets_.end()) {
        for (const uint32_t earlier : bucket->second) {
          const Rel rel = Compare(root, rule_records_[earlier].root);
          if (rel != Rel::kWider && rel != Rel::kNarrower) continue;
          other = &rule_records_[earlier];
          id = LintId::kSubsumedRule;
          message =
              rel == Rel::kNarrower
                  ? StrCat("subsumed rule: matches a provable subset of "
                           "earlier rule `",
                           other->ref.name,
                           "` (identical AST under a strictly wider "
                           "ANY-threshold / P-period there)")
                  : StrCat("subsumed rule: earlier rule `", other->ref.name,
                           "` matches a provable subset of this rule "
                           "(identical AST under a strictly wider "
                           "ANY-threshold / P-period here)");
          citation =
              "Thm 5.1 (canonical forms); Snoop ANY / P semantics "
              "(Chakravarthy et al. VLDB'94)";
          break;
        }
      }
    }
  }
  if (other == nullptr) return;
  // A suppression on EITHER rule of the pair silences the finding.
  if (Suppresses(suppressed, id) || Suppresses(other->suppressed, id)) {
    ++suppressed_findings_;
    return;
  }
  CatalogueFinding finding;
  finding.diagnostic.id = id;
  finding.diagnostic.severity = LintSeverity::kWarning;
  finding.diagnostic.message = std::move(message);
  finding.diagnostic.citation = std::move(citation);
  finding.diagnostic.begin = expr->src_begin;
  finding.diagnostic.end = expr->src_end;
  finding.diagnostic.subexpr = NodeText(root);
  finding.rule = ref;
  finding.related = other->ref;
  out.push_back(std::move(finding));
}

void CatalogueAnalyzer::CheckUnknownNames(
    const CatalogueRuleRef& ref, const ExprPtr& expr,
    const EventTypeRegistry& registry,
    std::span<const std::string> suppressed,
    std::vector<CatalogueFinding>& out) {
  if (!has_producers_ || Suppresses(suppressed, LintId::kUnknownEventName)) {
    return;
  }
  // Walk leaves in source order so findings are deterministic; dedupe
  // names within the rule.
  std::vector<uint32_t> seen;
  std::vector<const Expr*> stack{expr.get()};
  std::vector<const Expr*> leaves;
  while (!stack.empty()) {
    const Expr* node = stack.back();
    stack.pop_back();
    if (node->kind == OpKind::kPrimitive) leaves.push_back(node);
    for (auto it = node->children.rbegin(); it != node->children.rend();
         ++it) {
      stack.push_back(it->get());
    }
  }
  for (const Expr* leaf : leaves) {
    const std::string name = registry.NameOf(leaf->primitive_type);
    const uint32_t name_id = InternName(name);
    if (name_is_producer_[name_id]) continue;
    if (std::find(seen.begin(), seen.end(), name_id) != seen.end()) continue;
    seen.push_back(name_id);
    CatalogueFinding finding;
    finding.diagnostic.id = LintId::kUnknownEventName;
    finding.diagnostic.severity = LintSeverity::kWarning;
    finding.diagnostic.message =
        StrCat("never fires: no declared producer emits event `", name,
               "` (the catalogue's `# producers:` declarations do not "
               "cover it), so the dispatch index routes it zero "
               "occurrences");
    finding.diagnostic.citation =
        "paper Sec. 3 (primitive events are raised by declared sources)";
    finding.diagnostic.begin = leaf->src_begin;
    finding.diagnostic.end = leaf->src_end;
    finding.diagnostic.subexpr = name;
    finding.rule = ref;
    out.push_back(std::move(finding));
  }
}

void CatalogueAnalyzer::CheckUnboundedState(
    const CatalogueRuleRef& ref, const ExprPtr& expr,
    const EventTypeRegistry& registry, ParamContext context,
    const RuleCost& cost, std::span<const std::string> suppressed,
    std::vector<CatalogueFinding>& out) {
  if (cost.state_bound != StateBound::kStreamLinear) return;
  if (Suppresses(suppressed, LintId::kUnboundedState)) return;
  CatalogueFinding finding;
  finding.diagnostic.id = LintId::kUnboundedState;
  finding.diagnostic.severity = LintSeverity::kWarning;
  finding.diagnostic.message = StrCat(
      "unbounded state: under the ", ParamContextToString(context),
      " context no constituent is ever consumed, so the rule's ",
      cost.state_ops,
      " stateful operator(s) retain O(n) occurrences over a stream of "
      "length n; declare a consuming context or budget for linear memory");
  finding.diagnostic.citation =
      "paper Sec. 5.3 (declarative semantics retains all constituents); "
      "Snoop consumption modes (Chakravarthy et al. VLDB'94)";
  finding.diagnostic.begin = expr->src_begin;
  finding.diagnostic.end = expr->src_end;
  finding.diagnostic.subexpr = expr->ToString(registry);
  finding.rule = ref;
  out.push_back(std::move(finding));
}

SharingReport CatalogueAnalyzer::Sharing() const {
  SharingReport report;
  report.rules = rule_records_.size();
  report.total_subtrees = total_subtrees_;
  report.unique_subtrees = nodes_.size();
  report.predicted_dag_nodes = nodes_.size();
  report.hash_collisions = hash_collisions_;
  // Top-K shared COMPOSITE subtrees (primitive sharing is the event
  // index's column), without building text for the whole DAG: sort ids
  // by (count desc, size desc, hash) first, render only the winners.
  std::vector<uint32_t> shared;
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].count >= 2 && nodes_[id].kind != OpKind::kPrimitive) {
      shared.push_back(id);
    }
  }
  std::sort(shared.begin(), shared.end(), [&](uint32_t a, uint32_t b) {
    if (nodes_[a].count != nodes_[b].count) {
      return nodes_[a].count > nodes_[b].count;
    }
    if (nodes_[a].size != nodes_[b].size) {
      return nodes_[a].size > nodes_[b].size;
    }
    return nodes_[a].hash < nodes_[b].hash;
  });
  if (shared.size() > options_.top_k) shared.resize(options_.top_k);
  for (const uint32_t id : shared) {
    SharedSubtree entry;
    entry.expr = NodeText(id);
    entry.hash = nodes_[id].hash;
    entry.count = nodes_[id].count;
    entry.size = nodes_[id].size;
    report.top_shared.push_back(std::move(entry));
  }
  return report;
}

std::vector<EventIndexEntry> CatalogueAnalyzer::EventIndex(
    size_t top_k) const {
  std::vector<EventIndexEntry> index;
  for (uint32_t id = 0; id < names_.size(); ++id) {
    if (name_rule_count_[id] == 0) continue;
    index.push_back(EventIndexEntry{names_[id], name_rule_count_[id]});
  }
  std::sort(index.begin(), index.end(),
            [](const EventIndexEntry& a, const EventIndexEntry& b) {
              if (a.rules != b.rules) return a.rules > b.rules;
              return a.event < b.event;
            });
  if (top_k > 0 && index.size() > top_k) index.resize(top_k);
  return index;
}

std::string CatalogueAnalyzer::ReportJson() const {
  const SharingReport sharing = Sharing();
  const std::vector<EventIndexEntry> index = EventIndex(options_.top_k);

  size_t by_id[4] = {0, 0, 0, 0};
  for (const CatalogueFinding& finding : findings_) {
    switch (finding.diagnostic.id) {
      case LintId::kDuplicateRule:
        ++by_id[0];
        break;
      case LintId::kSubsumedRule:
        ++by_id[1];
        break;
      case LintId::kUnknownEventName:
        ++by_id[2];
        break;
      case LintId::kUnboundedState:
        ++by_id[3];
        break;
      default:
        break;
    }
  }
  size_t bounds[3] = {0, 0, 0};
  size_t total_state_ops = 0;
  size_t max_fanout = 0;
  for (const RuleCost& cost : costs_) {
    ++bounds[static_cast<size_t>(cost.state_bound)];
    total_state_ops += cost.state_ops;
    max_fanout = std::max(max_fanout, cost.fanout);
  }
  // Worst rules by state: stream-linear first, then most stateful ops.
  std::vector<const RuleCost*> worst;
  worst.reserve(costs_.size());
  for (const RuleCost& cost : costs_) worst.push_back(&cost);
  std::stable_sort(worst.begin(), worst.end(),
                   [](const RuleCost* a, const RuleCost* b) {
                     if (a->state_bound != b->state_bound) {
                       return static_cast<int>(a->state_bound) >
                              static_cast<int>(b->state_bound);
                     }
                     return a->state_ops > b->state_ops;
                   });
  if (worst.size() > options_.top_k) worst.resize(options_.top_k);

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"sentineld-catalogue-v1\",\n";
  json += StrCat("  \"rules\": ", rule_records_.size(), ",\n");
  json += StrCat("  \"context\": \"",
                 ParamContextToString(options_.context), "\",\n");
  json += StrCat("  \"diagnostics\": {\"SL012\": ", by_id[0],
                 ", \"SL013\": ", by_id[1], ", \"SL014\": ", by_id[2],
                 ", \"SL015\": ", by_id[3],
                 ", \"suppressed\": ", suppressed_findings_, "},\n");
  json += "  \"sharing\": {\n";
  json += StrCat("    \"total_subtrees\": ", sharing.total_subtrees, ",\n");
  json += StrCat("    \"unique_subtrees\": ", sharing.unique_subtrees, ",\n");
  json += StrCat("    \"predicted_dag_nodes\": ",
                 sharing.predicted_dag_nodes, ",\n");
  json += StrCat("    \"sharing_ratio\": ",
                 FormatDouble(sharing.unique_subtrees == 0
                                  ? 1.0
                                  : static_cast<double>(
                                        sharing.total_subtrees) /
                                        static_cast<double>(
                                            sharing.unique_subtrees),
                              3),
                 ",\n");
  json += StrCat("    \"hash_collisions\": ", sharing.hash_collisions, ",\n");
  json += "    \"top_shared\": [";
  for (size_t i = 0; i < sharing.top_shared.size(); ++i) {
    const SharedSubtree& entry = sharing.top_shared[i];
    json += i == 0 ? "\n" : ",\n";
    json += "      {\"expr\": \"";
    Escape(entry.expr, json);
    json += StrCat("\", \"hash\": \"", HexHash(entry.hash),
                   "\", \"count\": ", entry.count,
                   ", \"size\": ", entry.size, "}");
  }
  json += sharing.top_shared.empty() ? "]\n" : "\n    ]\n";
  json += "  },\n";
  json += "  \"event_index\": {\n";
  json += StrCat("    \"events\": ", distinct_event_names(), ",\n");
  json += StrCat("    \"producers_declared\": ",
                 has_producers_ ? "true" : "false", ",\n");
  json += "    \"top\": [";
  for (size_t i = 0; i < index.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += "      {\"event\": \"";
    Escape(index[i].event, json);
    json += StrCat("\", \"rules\": ", index[i].rules, "}");
  }
  json += index.empty() ? "]\n" : "\n    ]\n";
  json += "  },\n";
  json += "  \"cost\": {\n";
  json += StrCat("    \"state_bounds\": {\"constant\": ", bounds[0],
                 ", \"window_bounded\": ", bounds[1],
                 ", \"stream_linear\": ", bounds[2], "},\n");
  json += StrCat("    \"total_state_ops\": ", total_state_ops, ",\n");
  json += StrCat("    \"max_fanout\": ", max_fanout, ",\n");
  json += "    \"worst_state\": [";
  for (size_t i = 0; i < worst.size(); ++i) {
    const RuleCost& cost = *worst[i];
    json += i == 0 ? "\n" : ",\n";
    json += "      {\"rule\": \"";
    Escape(cost.rule.name, json);
    json += StrCat("\", \"line\": ", cost.rule.line,
                   ", \"state_bound\": \"",
                   StateBoundToString(cost.state_bound),
                   "\", \"state_ops\": ", cost.state_ops,
                   ", \"fanout\": ", cost.fanout, "}");
  }
  json += worst.empty() ? "]\n" : "\n    ]\n";
  json += "  }\n";
  json += "}\n";
  return json;
}

}  // namespace sentineld
