#ifndef SENTINELD_UTIL_HISTOGRAM_H_
#define SENTINELD_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sentineld {

/// Streaming summary of a sample distribution (count, mean, min/max,
/// percentiles). Used by the distributed benches to report detection
/// latency. Percentiles are exact: samples are retained and sorted on
/// demand, which is fine at bench scale.
class Histogram {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Exact p-th percentile by nearest-rank, p in [0, 100].
  double Percentile(double p) const;

  /// One-line summary "n=.. mean=.. p50=.. p99=.. max=..".
  std::string Summary(int digits = 2) const;

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
  double sum_sq_ = 0;
};

}  // namespace sentineld

#endif  // SENTINELD_UTIL_HISTOGRAM_H_
