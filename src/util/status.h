#ifndef SENTINELD_UTIL_STATUS_H_
#define SENTINELD_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace sentineld {

/// Canonical error codes, modeled after the subset of absl::StatusCode the
/// library actually needs. Fallible library operations return Status (or
/// Result<T>) rather than throwing: sentineld is exception-free.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns the canonical spelling of a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. An engaged message is only stored
/// for non-OK statuses; the OK status is a single word.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error wrapper (a minimal absl::StatusOr). A Result is either
/// engaged with a T or holds a non-OK Status; accessing value() on an error
/// aborts the process (library misuse, not a recoverable condition).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-*)
  /// Implicit construction from an error: `return Status::NotFound(...)`.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      // An OK status carries no value; normalize to an error so that the
      // invariant "holds Status => !ok()" is preserved.
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    const Status* error = std::get_if<Status>(&rep_);
    return error != nullptr ? *error : kOk;
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller: `RETURN_IF_ERROR(DoThing());`.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::sentineld::Status _st = (expr);               \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace sentineld

#endif  // SENTINELD_UTIL_STATUS_H_
