#include "util/table_printer.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  CHECK(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

bool TablePrinter::LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  if (i == cell.size()) return false;
  bool has_digit = false;
  for (; i < cell.size(); ++i) {
    char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
      continue;
    }
    if (c != '.' && c != ',' && c != '%' && c != 'e' && c != '-' &&
        c != 'x') {
      return false;
    }
  }
  return has_digit;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) os << title_ << "\n";

  auto rule = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  rule();
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << " " << PadRight(header_[c], widths[c]) << " |";
  }
  os << "\n";
  rule();
  for (const auto& row : rows_) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      os << " "
         << (LooksNumeric(cell) ? PadLeft(cell, widths[c])
                                : PadRight(cell, widths[c]))
         << " |";
    }
    os << "\n";
  }
  rule();
}

}  // namespace sentineld
