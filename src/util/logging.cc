#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace sentineld {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Strip directories for readability; keep the basename.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << basename << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace sentineld
