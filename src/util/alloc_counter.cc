#include "util/alloc_counter.h"

#include <cstdlib>
#include <new>

// Sanitizer builds interpose malloc/free themselves; replacing the
// global operator new on top of their interceptors double-counts and
// (under LSan) confuses leak attribution. Compile the overrides out and
// report "unavailable" so tests skip their strict assertions.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SENTINELD_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SENTINELD_ALLOC_COUNTING 0
#endif
#endif
#ifndef SENTINELD_ALLOC_COUNTING
#define SENTINELD_ALLOC_COUNTING 1
#endif

namespace {

// Plain thread_local integers: zero-initialized (no dynamic init, so
// no re-entrancy hazard when the first allocation on a thread lands
// before any user code runs). File scope so both the sentineld
// accessors and the global-scope operator new below see them.
thread_local uint64_t tl_allocs = 0;
thread_local uint64_t tl_bytes = 0;
thread_local uint64_t tl_frees = 0;

}  // namespace

namespace sentineld {

bool AllocCountingAvailable() { return SENTINELD_ALLOC_COUNTING != 0; }

AllocCounts CurrentThreadAllocCounts() {
  return {tl_allocs, tl_bytes, tl_frees};
}

}  // namespace sentineld

#if SENTINELD_ALLOC_COUNTING

namespace {

void* CountedAlloc(size_t size) {
  ++tl_allocs;
  tl_bytes += size;
  // malloc(0) may return null without being an error; keep new's
  // contract of a unique non-null pointer.
  void* ptr = std::malloc(size ? size : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void CountedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;
  ++tl_frees;
  std::free(ptr);
}

}  // namespace

// The replaceable global forms. The nothrow and nothrow-array variants
// forward to these per the standard's default definitions, so replacing
// the four below (plus sized deletes) covers every non-aligned path.
// Aligned (align_val_t) forms are deliberately left default: nothing on
// the hot path over-aligns (SmallVector static_asserts this), and the
// default aligned forms pair internally.
void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* ptr) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, size_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, size_t) noexcept { CountedFree(ptr); }

#endif  // SENTINELD_ALLOC_COUNTING
