#ifndef SENTINELD_UTIL_TABLE_PRINTER_H_
#define SENTINELD_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sentineld {

/// Accumulates rows and prints an aligned ASCII table, the output format of
/// every experiment binary under bench/. Numeric-looking cells are
/// right-aligned; everything else left-aligned.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table.
  void Print(std::ostream& os) const;

 private:
  static bool LooksNumeric(const std::string& cell);

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sentineld

#endif  // SENTINELD_UTIL_TABLE_PRINTER_H_
