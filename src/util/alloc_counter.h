#ifndef SENTINELD_UTIL_ALLOC_COUNTER_H_
#define SENTINELD_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace sentineld {

/// Per-thread totals from the counting `operator new` / `operator
/// delete` overrides in alloc_counter.cc. The overrides live in a
/// separate static library (sentineld_alloc_counter) that is linked
/// ONLY into the binaries that assert on allocation behaviour (the
/// alloc regression test and the --json bench harnesses); ordinary
/// builds keep the default allocator.
///
/// Counts are thread-local: a measurement loop sees exactly the
/// allocations its own thread performed, undisturbed by detector
/// worker threads. Snapshot before and after the region of interest
/// and subtract.
struct AllocCounts {
  uint64_t allocs = 0;  ///< operator new calls on this thread.
  uint64_t bytes = 0;   ///< bytes requested by those calls.
  uint64_t frees = 0;   ///< operator delete calls on this thread.
};

inline AllocCounts operator-(const AllocCounts& a, const AllocCounts& b) {
  return {a.allocs - b.allocs, a.bytes - b.bytes, a.frees - b.frees};
}

/// False when the overrides are compiled out (sanitizer builds: ASan /
/// TSan interpose malloc themselves, and stacking a second replacement
/// on top would fight their interceptors). Tests must skip their strict
/// assertions when this is false.
bool AllocCountingAvailable();

/// Running totals for the calling thread. Zeros (and monotonically
/// zero) when AllocCountingAvailable() is false.
AllocCounts CurrentThreadAllocCounts();

}  // namespace sentineld

#endif  // SENTINELD_UTIL_ALLOC_COUNTER_H_
