#ifndef SENTINELD_UTIL_SMALL_VECTOR_H_
#define SENTINELD_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sentineld {

/// A contiguous sequence with `N` elements of inline storage: sequences
/// of size <= N live entirely inside the object (zero heap traffic), and
/// longer sequences spill to a heap buffer with vector-style doubling.
///
/// This is the storage primitive behind the hot-path event layout
/// (docs/memory.md): composite timestamps are almost always singletons
/// or pairs (Def 5.2 / Thm 5.1 keep the maxima set tiny even for deep
/// compositions), so `SmallVector<PrimitiveTimestamp, 2>` makes the
/// common case allocation-free while staying correct for the rare wide
/// antichain.
///
/// Deliberately minimal: the subset of the std::vector interface the
/// codebase uses, with pointer iterators (so std algorithms and
/// std::span interoperate directly). Not exception-safe beyond the
/// basic guarantee; element moves are assumed non-throwing.
template <typename T, size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be non-zero");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned element types are not supported");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  // User-provided (not `= default`) so `const SmallVector v;` is legal
  // despite the deliberately-uninitialized inline buffer.
  SmallVector() {}  // NOLINT(modernize-use-equals-default)

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) ::new (static_cast<void*>(data_ + size_++)) T(v);
  }

  template <typename It>
  SmallVector(It first, It last) {
    append(first, last);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (const T& v : other) ::new (static_cast<void*>(data_ + size_++)) T(v);
  }

  SmallVector(SmallVector&& other) noexcept { StealFrom(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (const T& v : other) ::new (static_cast<void*>(data_ + size_++)) T(v);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    DestroyAll();
    StealFrom(other);
    return *this;
  }

  ~SmallVector() { DestroyAll(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() { data_[--size_].~T(); }

  void clear() {
    std::destroy(data_, data_ + size_);
    size_ = 0;
  }

  /// Appends [first, last) — the idiom `v.insert(v.end(), a, b)`.
  template <typename It>
  void append(It first, It last) {
    for (; first != last; ++first) emplace_back(*first);
  }

  /// Removes [first, last), shifting the tail down (used by the
  /// canonicalization sort+unique+erase idiom).
  iterator erase(iterator first, iterator last) {
    iterator tail = std::move(last, end(), first);
    std::destroy(tail, end());
    size_ -= static_cast<size_t>(last - first);
    return first;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  bool IsHeap() const {
    return data_ != reinterpret_cast<const T*>(inline_);
  }

  void Grow(size_t min_capacity) {
    size_t cap = capacity_ * 2;
    if (cap < min_capacity) cap = min_capacity;
    T* mem = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::uninitialized_move(data_, data_ + size_, mem);
    std::destroy(data_, data_ + size_);
    if (IsHeap()) ::operator delete(data_);
    data_ = mem;
    capacity_ = cap;
  }

  /// Destroys elements and releases any heap buffer, leaving the members
  /// in a moved-from (but not reset) state; callers re-establish them.
  void DestroyAll() {
    std::destroy(data_, data_ + size_);
    if (IsHeap()) ::operator delete(data_);
  }

  void StealFrom(SmallVector& other) noexcept {
    if (other.IsHeap()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
      return;
    }
    data_ = InlineData();
    capacity_ = N;
    size_ = other.size_;
    std::uninitialized_move(other.data_, other.data_ + other.size_, data_);
    std::destroy(other.data_, other.data_ + other.size_);
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = reinterpret_cast<T*>(inline_);
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace sentineld

#endif  // SENTINELD_UTIL_SMALL_VECTOR_H_
