#ifndef SENTINELD_UTIL_LOGGING_H_
#define SENTINELD_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace sentineld {

/// Log severities, ordered. kFatal aborts the process after emitting.
enum class LogSeverity { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum severity; messages below it are dropped.
/// Default is kInfo.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Stream-style log-message collector. Emits on destruction; aborts for
/// kFatal. Not for direct use — use the LOG/CHECK macros.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace sentineld

#define SENTINELD_LOG_INTERNAL(severity)                                  \
  ::sentineld::internal_logging::LogMessage(severity, __FILE__, __LINE__) \
      .stream()

#define LOG_DEBUG SENTINELD_LOG_INTERNAL(::sentineld::LogSeverity::kDebug)
#define LOG_INFO SENTINELD_LOG_INTERNAL(::sentineld::LogSeverity::kInfo)
#define LOG_WARNING SENTINELD_LOG_INTERNAL(::sentineld::LogSeverity::kWarning)
#define LOG_ERROR SENTINELD_LOG_INTERNAL(::sentineld::LogSeverity::kError)
#define LOG_FATAL SENTINELD_LOG_INTERNAL(::sentineld::LogSeverity::kFatal)

/// CHECK aborts with a message when `cond` is false. It is always on
/// (release builds included): detection-semantics invariants are cheap and
/// violating them silently would corrupt results.
#define CHECK(cond)                                           \
  ((cond) ? (void)0                                           \
          : (void)(LOG_FATAL << "CHECK failed: " #cond " "))

#define CHECK_OP(a, b, op)                                              \
  CHECK((a)op(b))

#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

/// Aborts if `expr` (a Status, or a Result with a .status() accessor) is
/// not OK.
#define CHECK_OK(expr)                                                     \
  do {                                                                     \
    const auto& _check_ok_val = (expr);                                    \
    if (!_check_ok_val.ok()) {                                             \
      LOG_FATAL << "CHECK_OK failed: "                                     \
                << ::sentineld::internal_logging::StatusForLog(            \
                       _check_ok_val);                                     \
    }                                                                      \
  } while (false)

namespace sentineld::internal_logging {

/// Extracts a printable status string from a Status or Result-like value.
template <typename T>
std::string StatusForLog(const T& value) {
  if constexpr (requires { value.status(); }) {
    return value.status().ToString();
  } else {
    return value.ToString();
  }
}

}  // namespace sentineld::internal_logging

#endif  // SENTINELD_UTIL_LOGGING_H_
