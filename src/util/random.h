#ifndef SENTINELD_UTIL_RANDOM_H_
#define SENTINELD_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sentineld {

/// Deterministic, seedable PRNG (xoshiro256**). All randomized components —
/// workload generators, clock-offset models, property-test sweeps — draw
/// from a Rng so every run is reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams
  /// (expanded through SplitMix64 per the xoshiro authors' recommendation).
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform over all 64-bit values.
  uint64_t NextU64();

  /// Uniform over [0, bound). bound must be > 0. Uses rejection sampling,
  /// so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform over the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Exponentially distributed double with the given mean (> 0); used for
  /// inter-arrival times and network latency models.
  double NextExponential(double mean);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// A Zipf-distributed rank in [0, n) with exponent s; used by skewed
  /// event-type workload generators.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace sentineld

#endif  // SENTINELD_UTIL_RANDOM_H_
