#ifndef SENTINELD_UTIL_STRING_UTIL_H_
#define SENTINELD_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sentineld {

/// Concatenates the string representations of all arguments, using
/// operator<<. StrCat(1, "-", 2.5) == "1-2.5".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Left-pads `text` with spaces to `width` columns (no-op if longer).
std::string PadLeft(std::string_view text, size_t width);

/// Right-pads `text` with spaces to `width` columns (no-op if longer).
std::string PadRight(std::string_view text, size_t width);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Groups an integer with thousands separators: 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t value);

}  // namespace sentineld

#endif  // SENTINELD_UTIL_STRING_UTIL_H_
