#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace sentineld {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string PadLeft(std::string_view text, size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out.append(text);
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace sentineld
