#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

void Histogram::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

void Histogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  CHECK(!samples_.empty());
  SortIfNeeded();
  return samples_.front();
}

double Histogram::max() const {
  CHECK(!samples_.empty());
  SortIfNeeded();
  return samples_.back();
}

double Histogram::mean() const {
  CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  CHECK(!samples_.empty());
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Histogram::Percentile(double p) const {
  CHECK(!samples_.empty());
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  SortIfNeeded();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary(int digits) const {
  if (samples_.empty()) return "n=0";
  return StrCat("n=", samples_.size(), " mean=", FormatDouble(mean(), digits),
                " p50=", FormatDouble(Percentile(50), digits),
                " p95=", FormatDouble(Percentile(95), digits),
                " p99=", FormatDouble(Percentile(99), digits),
                " max=", FormatDouble(max(), digits));
}

}  // namespace sentineld
