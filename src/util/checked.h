#ifndef SENTINELD_UTIL_CHECKED_H_
#define SENTINELD_UTIL_CHECKED_H_

#include "util/logging.h"

/// Checked-invariant builds (cmake -DSENTINELD_CHECKED=ON) compile
/// assertions at the semantic chokepoints of the paper's model:
///
///   - composite-timestamp construction re-validates the result: the
///     maxima are pairwise concurrent (Thm 5.1) in canonical form
///     (Def 5.1/5.2);
///   - the composite comparators self-check the order laws
///     (irreflexivity, antisymmetry) on every operand pair they see —
///     only for orderings that claim those laws; `<_p1` (exists-exists)
///     is knowingly broken and exempt;
///   - the Sequencer asserts watermark monotonicity and that release
///     order is a linear extension of the composite `<`;
///   - ReliableLink asserts its seq/ack window invariants.
///
/// SENTINELD_ASSERT compiles to nothing in normal builds (its argument is
/// not evaluated); docs/analysis.md and DESIGN.md §10 describe the mode
/// and its measured overhead.
#if defined(SENTINELD_CHECKED)
#define SENTINELD_CHECKED_ENABLED 1
#else
#define SENTINELD_CHECKED_ENABLED 0
#endif

#if SENTINELD_CHECKED_ENABLED
#define SENTINELD_ASSERT(cond) CHECK(cond)
#else
#define SENTINELD_ASSERT(cond) \
  do {                         \
  } while (false)
#endif

namespace sentineld {

/// True in SENTINELD_CHECKED builds; lets tests and benchmarks report
/// which mode they exercised.
inline constexpr bool kCheckedBuild = (SENTINELD_CHECKED_ENABLED == 1);

}  // namespace sentineld

#endif  // SENTINELD_UTIL_CHECKED_H_
