#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace sentineld {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(NextU64());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  CHECK_GT(mean, 0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 == 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  CHECK_GT(n, 0u);
  // Inverse-CDF by linear scan is fine for the small alphabets generators
  // use; cache-free and exact.
  double norm = 0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = NextDouble() * norm;
  double acc = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

}  // namespace sentineld
