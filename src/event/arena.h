#ifndef SENTINELD_EVENT_ARENA_H_
#define SENTINELD_EVENT_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace sentineld {

/// Slab allocator behind Event's class-level operator new/delete
/// (docs/memory.md). Fixed-size blocks (sized for Event) are carved from
/// large slabs and recycled through per-thread free-list caches:
///
///   - Allocate pops from the calling thread's cache; an empty cache
///     refills in batches from a mutex-protected global pool, which
///     carves a fresh slab only when it too is empty. At steady state —
///     events created and retired at the same rate — every allocation is
///     a thread-local pointer pop: zero heap traffic, zero contention.
///     With the sharded detector each worker's cache is in effect a
///     per-shard pool.
///   - Free pushes onto the calling thread's cache and spills half to
///     the global pool past a bound, so producer/consumer thread pairs
///     (the ParallelDetector's feed/worker split) recirculate blocks
///     instead of growing one cache without bound. A thread's cache
///     flushes to the global pool when the thread exits.
///
/// Slabs are owned by a never-destroyed global pool: they stay reachable
/// for leak checkers and alive for any static-teardown-order stragglers.
/// Cross-thread reuse is made safe by the Event refcount's acq_rel
/// ordering plus the pool mutex on every cache refill/spill.
class EventArena {
 public:
  struct Stats {
    uint64_t slabs = 0;           ///< slabs carved so far (never freed)
    uint64_t blocks_per_slab = 0;
  };

  /// Returns a block sized/aligned for Event. Never fails (CHECK on
  /// exhausted memory).
  static void* Allocate();

  /// Recycles a block obtained from Allocate.
  static void Free(void* block) noexcept;

  static Stats GlobalStats();
};

}  // namespace sentineld

#endif  // SENTINELD_EVENT_ARENA_H_
