#include "event/generator.h"

#include <algorithm>

#include "util/logging.h"

namespace sentineld {

Status WorkloadConfig::Validate() const {
  if (num_sites == 0) return Status::InvalidArgument("num_sites == 0");
  if (num_types == 0) return Status::InvalidArgument("num_types == 0");
  if (mean_interarrival_ns <= 0) {
    return Status::InvalidArgument("mean_interarrival_ns <= 0");
  }
  if (type_skew < 0 || site_skew < 0) {
    return Status::InvalidArgument("negative skew");
  }
  return Status::Ok();
}

std::vector<PlannedEvent> GenerateWorkload(const WorkloadConfig& config,
                                           Rng& rng) {
  CHECK_OK(config.Validate());
  std::vector<PlannedEvent> plan;
  plan.reserve(config.num_events);
  TrueTimeNs now = config.start;
  for (size_t i = 0; i < config.num_events; ++i) {
    now += static_cast<int64_t>(rng.NextExponential(
        static_cast<double>(config.mean_interarrival_ns)));
    PlannedEvent e;
    e.when = now;
    e.site = config.site_skew == 0
                 ? static_cast<SiteId>(rng.NextBounded(config.num_sites))
                 : static_cast<SiteId>(
                       rng.NextZipf(config.num_sites, config.site_skew));
    e.type = config.type_skew == 0
                 ? static_cast<EventTypeId>(rng.NextBounded(config.num_types))
                 : static_cast<EventTypeId>(
                       rng.NextZipf(config.num_types, config.type_skew));
    e.params.emplace_back("seq", AttributeValue(static_cast<int64_t>(i)));
    plan.push_back(std::move(e));
  }
  return plan;
}

std::vector<PlannedEvent> GenerateBurst(EventTypeId type,
                                        const std::vector<SiteId>& sites,
                                        TrueTimeNs start, int64_t span_ns,
                                        size_t count) {
  CHECK(!sites.empty());
  CHECK_GT(count, 0u);
  std::vector<PlannedEvent> plan;
  plan.reserve(count);
  const int64_t step = count > 1 ? span_ns / static_cast<int64_t>(count - 1)
                                 : 0;
  for (size_t i = 0; i < count; ++i) {
    PlannedEvent e;
    e.when = start + step * static_cast<int64_t>(i);
    e.site = sites[i % sites.size()];
    e.type = type;
    plan.push_back(std::move(e));
  }
  return plan;
}

std::vector<PlannedEvent> MergePlans(std::vector<PlannedEvent> a,
                                     std::vector<PlannedEvent> b) {
  std::vector<PlannedEvent> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), std::make_move_iterator(a.begin()),
                std::make_move_iterator(a.end()));
  merged.insert(merged.end(), std::make_move_iterator(b.begin()),
                std::make_move_iterator(b.end()));
  std::stable_sort(
      merged.begin(), merged.end(),
      [](const PlannedEvent& x, const PlannedEvent& y) {
        return x.when < y.when;
      });
  return merged;
}

}  // namespace sentineld
