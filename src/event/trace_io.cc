#include "event/trace_io.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/string_util.h"

namespace sentineld {
namespace {

constexpr std::string_view kHeader = "# sentineld trace v1";

std::string EncodeValue(const AttributeValue& value) {
  if (value.is_int()) return StrCat("i:", value.AsInt());
  if (value.is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "d:%.17g", value.AsDouble());
    return buf;
  }
  if (value.is_bool()) return value.AsBool() ? "b:true" : "b:false";
  return StrCat("s:", PercentEncode(value.AsString()));
}

Result<AttributeValue> DecodeValue(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument(StrCat("malformed value '", text, "'"));
  }
  const std::string payload = text.substr(2);
  switch (text[0]) {
    case 'i': {
      int64_t parsed = 0;
      const auto [ptr, ec] = std::from_chars(
          payload.data(), payload.data() + payload.size(), parsed);
      if (ec != std::errc() || ptr != payload.data() + payload.size()) {
        return Status::InvalidArgument(StrCat("bad int '", payload, "'"));
      }
      return AttributeValue(parsed);
    }
    case 'd': {
      char* end = nullptr;
      const double parsed = std::strtod(payload.c_str(), &end);
      if (end != payload.c_str() + payload.size() || payload.empty()) {
        return Status::InvalidArgument(
            StrCat("bad double '", payload, "'"));
      }
      return AttributeValue(parsed);
    }
    case 'b':
      if (payload == "true") return AttributeValue(true);
      if (payload == "false") return AttributeValue(false);
      return Status::InvalidArgument(StrCat("bad bool '", payload, "'"));
    case 's': {
      Result<std::string> decoded = PercentDecode(payload);
      if (!decoded.ok()) return decoded.status();
      return AttributeValue(*decoded);
    }
    default:
      return Status::InvalidArgument(
          StrCat("unknown value tag '", text.substr(0, 1), "'"));
  }
}

}  // namespace

std::string PercentEncode(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (c == ' ' || c == '%' || c == '=' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<std::string> PercentDecode(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      out += encoded[i];
      continue;
    }
    if (i + 2 >= encoded.size()) {
      return Status::InvalidArgument("truncated percent escape");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(encoded[i + 1]);
    const int lo = hex(encoded[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad percent escape");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

Status WriteTrace(std::ostream& os, std::span<const PlannedEvent> plan,
                  const EventTypeRegistry& registry) {
  os << kHeader << "\n";
  for (const PlannedEvent& event : plan) {
    Result<EventTypeRegistry::TypeInfo> info = registry.Info(event.type);
    if (!info.ok()) return info.status();
    os << "event " << event.when << " " << event.site << " " << info->name;
    for (const Param& param : event.params) {
      os << " " << PercentEncode(param.name()) << "="
         << EncodeValue(param.value);
    }
    os << "\n";
  }
  if (!os.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Result<std::vector<PlannedEvent>> ReadTrace(std::istream& is,
                                            EventTypeRegistry& registry,
                                            bool auto_register) {
  std::vector<PlannedEvent> plan;
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped[0] == '#') {
      if (stripped == kHeader) saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument(
          "missing '# sentineld trace v1' header");
    }
    const auto fields = Split(std::string(stripped), ' ');
    if (fields.size() < 4 || fields[0] != "event") {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": expected 'event <when> <site> "
                 "<type> ...'"));
    }
    PlannedEvent event;
    {
      const auto [p1, e1] = std::from_chars(
          fields[1].data(), fields[1].data() + fields[1].size(),
          event.when);
      uint32_t site = 0;
      const auto [p2, e2] = std::from_chars(
          fields[2].data(), fields[2].data() + fields[2].size(), site);
      if (e1 != std::errc() || e2 != std::errc() ||
          p1 != fields[1].data() + fields[1].size() ||
          p2 != fields[2].data() + fields[2].size()) {
        return Status::InvalidArgument(
            StrCat("line ", line_no, ": bad when/site"));
      }
      event.site = site;
    }
    Result<EventTypeId> type = registry.Lookup(fields[3]);
    if (!type.ok() && auto_register) {
      type = registry.Register(fields[3], EventClass::kExplicit);
    }
    if (!type.ok()) {
      return Status::NotFound(
          StrCat("line ", line_no, ": event type '", fields[3], "'"));
    }
    event.type = *type;
    for (size_t i = 4; i < fields.size(); ++i) {
      if (fields[i].empty()) continue;  // tolerate double spaces
      const size_t eq = fields[i].find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            StrCat("line ", line_no, ": malformed parameter '", fields[i],
                   "'"));
      }
      Result<std::string> key = PercentDecode(fields[i].substr(0, eq));
      if (!key.ok()) return key.status();
      Result<AttributeValue> value = DecodeValue(fields[i].substr(eq + 1));
      if (!value.ok()) return value.status();
      event.params.emplace_back(*key, *value);
    }
    plan.push_back(std::move(event));
  }
  return plan;
}

}  // namespace sentineld
