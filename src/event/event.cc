#include "event/event.h"

#include "timestamp/max_operator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

const char* EventClassToString(EventClass c) {
  switch (c) {
    case EventClass::kDatabase:
      return "database";
    case EventClass::kTransaction:
      return "transaction";
    case EventClass::kExplicit:
      return "explicit";
    case EventClass::kTemporal:
      return "temporal";
    case EventClass::kAbstract:
      return "abstract";
    case EventClass::kComposite:
      return "composite";
  }
  return "?";
}

std::string AttributeValue::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(AsDouble(), 6);
  if (is_bool()) return AsBool() ? "true" : "false";
  return StrCat("\"", AsString(), "\"");
}

struct EventFactoryAccess {
  template <typename... Args>
  static EventPtr New(Args&&... args) {
    return std::shared_ptr<const Event>(
        new Event(std::forward<Args>(args)...));
  }
};

EventPtr Event::MakePrimitive(EventTypeId type,
                              const PrimitiveTimestamp& stamp,
                              ParameterList params) {
  CompositeTimestamp ts = CompositeTimestamp::FromSingle(stamp);
  CompositeTimestamp start = ts;  // a point occurrence starts when it is
  return EventFactoryAccess::New(type, std::move(ts), std::move(start),
                                 std::move(params), std::vector<EventPtr>{});
}

EventPtr Event::MakeComposite(EventTypeId type,
                              std::vector<EventPtr> constituents) {
  CHECK(!constituents.empty());
  std::vector<CompositeTimestamp> stamps;
  std::vector<CompositeTimestamp> starts;
  stamps.reserve(constituents.size());
  starts.reserve(constituents.size());
  for (const EventPtr& c : constituents) {
    CHECK(c != nullptr);
    stamps.push_back(c->timestamp());
    starts.push_back(c->interval_start());
  }
  return EventFactoryAccess::New(type, MaxAll(stamps), MinAll(starts),
                                 ParameterList{}, std::move(constituents));
}

void CollectPrimitives(const EventPtr& event, std::vector<EventPtr>& out) {
  if (event->is_primitive()) {
    out.push_back(event);
    return;
  }
  for (const EventPtr& c : event->constituents()) CollectPrimitives(c, out);
}

std::string Event::ToString() const {
  std::string out = StrCat("E", type_, "@", timestamp_.ToString());
  if (!constituents_.empty()) {
    std::vector<std::string> parts;
    parts.reserve(constituents_.size());
    for (const EventPtr& c : constituents_) parts.push_back(c->ToString());
    out += StrCat("[", Join(parts, "; "), "]");
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Event& event) {
  return os << event.ToString();
}

}  // namespace sentineld
