#include "event/event.h"

#include "event/arena.h"
#include "event/registry.h"
#include "timestamp/max_operator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {
namespace {

uint64_t NextUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* EventClassToString(EventClass c) {
  switch (c) {
    case EventClass::kDatabase:
      return "database";
    case EventClass::kTransaction:
      return "transaction";
    case EventClass::kExplicit:
      return "explicit";
    case EventClass::kTemporal:
      return "temporal";
    case EventClass::kAbstract:
      return "abstract";
    case EventClass::kComposite:
      return "composite";
  }
  return "?";
}

std::string AttributeValue::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(AsDouble(), 6);
  if (is_bool()) return AsBool() ? "true" : "false";
  return StrCat("\"", AsString(), "\"");
}

Param::Param(std::string_view name, AttributeValue value)
    : name_id(NameTable::Global().Intern(name)), value(std::move(value)) {}

std::string_view Param::name() const {
  return NameTable::Global().Resolve(name_id);
}

Event::Event(EventTypeId type, CompositeTimestamp timestamp,
             CompositeTimestamp start, ParameterList params,
             ConstituentVec constituents)
    : type_(type),
      refs_(1),
      uid_(NextUid()),
      timestamp_(std::move(timestamp)),
      start_(std::move(start)),
      params_(std::move(params)),
      constituents_(std::move(constituents)) {}

void* Event::operator new(size_t size) {
  SENTINELD_ASSERT(size == sizeof(Event));
  (void)size;
  return EventArena::Allocate();
}

void Event::operator delete(void* ptr) noexcept { EventArena::Free(ptr); }

EventPtr Event::MakePrimitive(EventTypeId type,
                              const PrimitiveTimestamp& stamp,
                              ParameterList params) {
  CompositeTimestamp ts = CompositeTimestamp::FromSingle(stamp);
  CompositeTimestamp start = ts;  // a point occurrence starts when it is
  return EventPtr(new Event(type, std::move(ts), std::move(start),
                            std::move(params), ConstituentVec{}));
}

EventPtr Event::MakeCompositeFrom(EventTypeId type, ConstituentVec kept) {
  CHECK(!kept.empty());
  // Fold the propagation rule directly over the constituents — no
  // temporary timestamp vectors (Sec. 5.2; MaxAll/MinAll semantics).
  CompositeTimestamp ts;
  SmallVector<PrimitiveTimestamp, 8> start_stamps;
  for (const EventPtr& c : kept) {
    CHECK(c != nullptr);
    ts = Max(ts, c->timestamp());
    start_stamps.append(c->interval_start().stamps().begin(),
                        c->interval_start().stamps().end());
  }
  CompositeTimestamp start =
      CompositeTimestamp::MinOf({start_stamps.data(), start_stamps.size()});
  return EventPtr(new Event(type, std::move(ts), std::move(start),
                            ParameterList{}, std::move(kept)));
}

EventPtr Event::MakeComposite(EventTypeId type,
                              std::span<const EventPtr> constituents) {
  return MakeCompositeFrom(
      type, ConstituentVec(constituents.begin(), constituents.end()));
}

EventPtr Event::MakeComposite(EventTypeId type,
                              std::initializer_list<EventPtr> constituents) {
  return MakeComposite(type, std::span<const EventPtr>(constituents.begin(),
                                                       constituents.size()));
}

EventPtr Event::MakeComposite(EventTypeId type,
                              std::vector<EventPtr> constituents) {
  ConstituentVec kept;
  kept.reserve(constituents.size());
  for (EventPtr& c : constituents) kept.push_back(std::move(c));
  return MakeCompositeFrom(type, std::move(kept));
}

void CollectPrimitives(const EventPtr& event, std::vector<EventPtr>& out) {
  if (event->is_primitive()) {
    out.push_back(event);
    return;
  }
  for (const EventPtr& c : event->constituents()) CollectPrimitives(c, out);
}

std::string Event::ToString() const {
  std::string out = StrCat("E", type_, "@", timestamp_.ToString());
  if (!constituents_.empty()) {
    std::vector<std::string> parts;
    parts.reserve(constituents_.size());
    for (const EventPtr& c : constituents_) parts.push_back(c->ToString());
    out += StrCat("[", Join(parts, "; "), "]");
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Event& event) {
  return os << event.ToString();
}

}  // namespace sentineld
