#ifndef SENTINELD_EVENT_REGISTRY_H_
#define SENTINELD_EVENT_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "util/status.h"

namespace sentineld {

/// Catalog of event types known to a Sentinel instance. Types are named,
/// classed, and assigned dense ids (usable as vector indices in the
/// detector). Not thread-safe; registration happens during rule setup.
class EventTypeRegistry {
 public:
  struct TypeInfo {
    EventTypeId id;
    std::string name;
    EventClass event_class;
  };

  /// Registers a new type; AlreadyExists if the name is taken.
  Result<EventTypeId> Register(const std::string& name,
                               EventClass event_class);

  /// Registers the name if new, otherwise returns the existing id
  /// (the existing class wins; mismatching class is InvalidArgument).
  Result<EventTypeId> GetOrRegister(const std::string& name,
                                    EventClass event_class);

  /// Looks up a type id by name.
  Result<EventTypeId> Lookup(const std::string& name) const;

  /// Info for a registered id; NotFound for unknown ids.
  Result<TypeInfo> Info(EventTypeId id) const;

  /// Name for a registered id, or "E<id>" for unknown ids (logging aid).
  std::string NameOf(EventTypeId id) const;

  size_t size() const { return types_.size(); }
  const std::vector<TypeInfo>& types() const { return types_; }

 private:
  std::vector<TypeInfo> types_;
  std::unordered_map<std::string, EventTypeId> by_name_;
};

}  // namespace sentineld

#endif  // SENTINELD_EVENT_REGISTRY_H_
