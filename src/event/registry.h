#ifndef SENTINELD_EVENT_REGISTRY_H_
#define SENTINELD_EVENT_REGISTRY_H_

#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "util/status.h"

namespace sentineld {

/// Process-wide intern table for attribute (parameter) names. The hot
/// path carries NameIds only (see Param in event/event.h); strings are
/// resolved back at the boundaries — codec wire encoding, trace/log
/// rendering, and parser/lint entry points — so constructing an event
/// with an already-interned name never allocates for the key.
///
/// Threading rules (docs/memory.md): Intern takes a writer lock and may
/// be called from any thread; TryLookup and Resolve take reader locks.
/// Ids are dense, stable for the process lifetime, and never recycled
/// (storage is a deque so resolved views stay valid forever). Id 0 is
/// always the empty string — the value of a default-constructed Param.
class NameTable {
 public:
  /// The process-wide instance every Param goes through.
  static NameTable& Global();

  /// Returns the id for `name`, interning it if new.
  NameId Intern(std::string_view name);

  /// The id for `name` if already interned, else nullopt. Lets lookups
  /// by never-seen keys answer "absent" without mutating the table.
  std::optional<NameId> TryLookup(std::string_view name) const;

  /// The string for an interned id. CHECK-fails on out-of-range ids.
  std::string_view Resolve(NameId id) const;

  size_t size() const;

  NameTable();
  NameTable(const NameTable&) = delete;
  NameTable& operator=(const NameTable&) = delete;

 private:
  mutable std::shared_mutex mu_;
  /// Deque: growth never moves existing strings, so Resolve's views
  /// remain valid without holding the lock across uses.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, NameId> by_name_;
};

/// Catalog of event types known to a Sentinel instance. Types are named,
/// classed, and assigned dense ids (usable as vector indices in the
/// detector). Not thread-safe; registration happens during rule setup.
class EventTypeRegistry {
 public:
  struct TypeInfo {
    EventTypeId id;
    std::string name;
    EventClass event_class;
  };

  /// Registers a new type; AlreadyExists if the name is taken.
  Result<EventTypeId> Register(const std::string& name,
                               EventClass event_class);

  /// Registers the name if new, otherwise returns the existing id
  /// (the existing class wins; mismatching class is InvalidArgument).
  Result<EventTypeId> GetOrRegister(const std::string& name,
                                    EventClass event_class);

  /// Looks up a type id by name.
  Result<EventTypeId> Lookup(const std::string& name) const;

  /// Info for a registered id; NotFound for unknown ids.
  Result<TypeInfo> Info(EventTypeId id) const;

  /// Name for a registered id, or "E<id>" for unknown ids (logging aid).
  std::string NameOf(EventTypeId id) const;

  size_t size() const { return types_.size(); }
  const std::vector<TypeInfo>& types() const { return types_; }

 private:
  std::vector<TypeInfo> types_;
  std::unordered_map<std::string, EventTypeId> by_name_;
};

}  // namespace sentineld

#endif  // SENTINELD_EVENT_REGISTRY_H_
