#include "event/params.h"

#include "util/string_util.h"

namespace sentineld {

namespace {

/// Key lookups compare interned ids: a key the process has never
/// interned cannot match any parameter, so a failed TryLookup answers
/// "absent" without touching the table.
std::optional<NameId> LookupKey(std::string_view key) {
  return NameTable::Global().TryLookup(key);
}

}  // namespace

ParameterList FlattenParams(const EventPtr& event) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  ParameterList out;
  for (const EventPtr& p : primitives) {
    out.append(p->params().begin(), p->params().end());
  }
  return out;
}

std::optional<AttributeValue> FindParam(const EventPtr& event,
                                        std::string_view key) {
  const std::optional<NameId> id = LookupKey(key);
  if (!id.has_value()) return std::nullopt;
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  for (const EventPtr& p : primitives) {
    for (const Param& param : p->params()) {
      if (param.name_id == *id) return param.value;
    }
  }
  return std::nullopt;
}

std::optional<AttributeValue> FindLastParam(const EventPtr& event,
                                            std::string_view key) {
  const std::optional<NameId> id = LookupKey(key);
  if (!id.has_value()) return std::nullopt;
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::optional<AttributeValue> found;
  for (const EventPtr& p : primitives) {
    for (const Param& param : p->params()) {
      if (param.name_id == *id) found = param.value;
    }
  }
  return found;
}

EventPtr FindConstituent(const EventPtr& event, EventTypeId type) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  for (const EventPtr& p : primitives) {
    if (p->type() == type) return p;
  }
  return nullptr;
}

std::vector<EventPtr> FindConstituents(const EventPtr& event,
                                       EventTypeId type) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::vector<EventPtr> out;
  for (const EventPtr& p : primitives) {
    if (p->type() == type) out.push_back(p);
  }
  return out;
}

int64_t SumIntParam(const EventPtr& event, std::string_view key) {
  const std::optional<NameId> id = LookupKey(key);
  if (!id.has_value()) return 0;
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  int64_t total = 0;
  for (const EventPtr& p : primitives) {
    for (const Param& param : p->params()) {
      if (param.name_id == *id && param.value.is_int()) {
        total += param.value.AsInt();
      }
    }
  }
  return total;
}

std::string DescribeOccurrence(const EventPtr& event,
                               const EventTypeRegistry& registry) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::vector<std::string> parts;
  parts.reserve(primitives.size());
  for (const EventPtr& p : primitives) {
    std::string part =
        StrCat(registry.NameOf(p->type()), "@site", p->site());
    for (const Param& param : p->params()) {
      part += StrCat(" ", param.name(), "=", param.value.ToString());
    }
    parts.push_back(std::move(part));
  }
  return StrCat(registry.NameOf(event->type()), " ",
                event->timestamp().ToString(), " <- [", Join(parts, "; "),
                "]");
}

}  // namespace sentineld
