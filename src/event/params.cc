#include "event/params.h"

#include "util/string_util.h"

namespace sentineld {

ParameterList FlattenParams(const EventPtr& event) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  ParameterList out;
  for (const EventPtr& p : primitives) {
    out.insert(out.end(), p->params().begin(), p->params().end());
  }
  return out;
}

std::optional<AttributeValue> FindParam(const EventPtr& event,
                                        std::string_view key) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  for (const EventPtr& p : primitives) {
    for (const auto& [name, value] : p->params()) {
      if (name == key) return value;
    }
  }
  return std::nullopt;
}

std::optional<AttributeValue> FindLastParam(const EventPtr& event,
                                            std::string_view key) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::optional<AttributeValue> found;
  for (const EventPtr& p : primitives) {
    for (const auto& [name, value] : p->params()) {
      if (name == key) found = value;
    }
  }
  return found;
}

EventPtr FindConstituent(const EventPtr& event, EventTypeId type) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  for (const EventPtr& p : primitives) {
    if (p->type() == type) return p;
  }
  return nullptr;
}

std::vector<EventPtr> FindConstituents(const EventPtr& event,
                                       EventTypeId type) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::vector<EventPtr> out;
  for (const EventPtr& p : primitives) {
    if (p->type() == type) out.push_back(p);
  }
  return out;
}

int64_t SumIntParam(const EventPtr& event, std::string_view key) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  int64_t total = 0;
  for (const EventPtr& p : primitives) {
    for (const auto& [name, value] : p->params()) {
      if (name == key && value.is_int()) total += value.AsInt();
    }
  }
  return total;
}

std::string DescribeOccurrence(const EventPtr& event,
                               const EventTypeRegistry& registry) {
  std::vector<EventPtr> primitives;
  CollectPrimitives(event, primitives);
  std::vector<std::string> parts;
  parts.reserve(primitives.size());
  for (const EventPtr& p : primitives) {
    std::string part =
        StrCat(registry.NameOf(p->type()), "@site", p->site());
    for (const auto& [key, value] : p->params()) {
      part += StrCat(" ", key, "=", value.ToString());
    }
    parts.push_back(std::move(part));
  }
  return StrCat(registry.NameOf(event->type()), " ",
                event->timestamp().ToString(), " <- [", Join(parts, "; "),
                "]");
}

}  // namespace sentineld
