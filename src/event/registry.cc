#include "event/registry.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace sentineld {

NameTable& NameTable::Global() {
  // Never destroyed: Params resolve names during static teardown of
  // caches and test fixtures, so the table must outlive everything.
  static NameTable* table = new NameTable();
  return *table;
}

NameTable::NameTable() {
  // Id 0 is the empty string so a default-constructed Param resolves.
  names_.emplace_back();
  by_name_.emplace(names_.back(), 0);
}

NameId NameTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;  // raced with another writer
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  by_name_.emplace(names_.back(), id);
  return id;
}

std::optional<NameId> NameTable::TryLookup(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::string_view NameTable::Resolve(NameId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CHECK_LT(id, names_.size());
  return names_[id];
}

size_t NameTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

Result<EventTypeId> EventTypeRegistry::Register(const std::string& name,
                                                EventClass event_class) {
  if (name.empty()) {
    return Status::InvalidArgument("event type name must be non-empty");
  }
  if (by_name_.contains(name)) {
    return Status::AlreadyExists(StrCat("event type '", name, "'"));
  }
  const EventTypeId id = static_cast<EventTypeId>(types_.size());
  types_.push_back(TypeInfo{id, name, event_class});
  by_name_.emplace(name, id);
  return id;
}

Result<EventTypeId> EventTypeRegistry::GetOrRegister(
    const std::string& name, EventClass event_class) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Register(name, event_class);
  const TypeInfo& info = types_[it->second];
  if (info.event_class != event_class) {
    return Status::InvalidArgument(
        StrCat("event type '", name, "' already registered as ",
               EventClassToString(info.event_class)));
  }
  return it->second;
}

Result<EventTypeId> EventTypeRegistry::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("event type '", name, "'"));
  }
  return it->second;
}

Result<EventTypeRegistry::TypeInfo> EventTypeRegistry::Info(
    EventTypeId id) const {
  if (id >= types_.size()) {
    return Status::NotFound(StrCat("event type id ", id));
  }
  return types_[id];
}

std::string EventTypeRegistry::NameOf(EventTypeId id) const {
  if (id < types_.size()) return types_[id].name;
  return StrCat("E", id);
}

}  // namespace sentineld
