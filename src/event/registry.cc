#include "event/registry.h"

#include "util/string_util.h"

namespace sentineld {

Result<EventTypeId> EventTypeRegistry::Register(const std::string& name,
                                                EventClass event_class) {
  if (name.empty()) {
    return Status::InvalidArgument("event type name must be non-empty");
  }
  if (by_name_.contains(name)) {
    return Status::AlreadyExists(StrCat("event type '", name, "'"));
  }
  const EventTypeId id = static_cast<EventTypeId>(types_.size());
  types_.push_back(TypeInfo{id, name, event_class});
  by_name_.emplace(name, id);
  return id;
}

Result<EventTypeId> EventTypeRegistry::GetOrRegister(
    const std::string& name, EventClass event_class) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Register(name, event_class);
  const TypeInfo& info = types_[it->second];
  if (info.event_class != event_class) {
    return Status::InvalidArgument(
        StrCat("event type '", name, "' already registered as ",
               EventClassToString(info.event_class)));
  }
  return it->second;
}

Result<EventTypeId> EventTypeRegistry::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("event type '", name, "'"));
  }
  return it->second;
}

Result<EventTypeRegistry::TypeInfo> EventTypeRegistry::Info(
    EventTypeId id) const {
  if (id >= types_.size()) {
    return Status::NotFound(StrCat("event type id ", id));
  }
  return types_[id];
}

std::string EventTypeRegistry::NameOf(EventTypeId id) const {
  if (id < types_.size()) return types_[id].name;
  return StrCat("E", id);
}

}  // namespace sentineld
