#ifndef SENTINELD_EVENT_PARAMS_H_
#define SENTINELD_EVENT_PARAMS_H_

#include <optional>
#include <string>
#include <string_view>

#include "event/event.h"
#include "event/registry.h"

namespace sentineld {

/// Parameter computation for composite events (Sentinel computes a
/// composite occurrence's parameters from its constituents' parameter
/// lists). These helpers are what rule conditions and actions use to
/// inspect an occurrence without manual tree-walking.

/// The parameters of every primitive constituent underneath `event`,
/// flattened in detection (depth-first) order. Keys repeat if multiple
/// constituents carry the same attribute.
ParameterList FlattenParams(const EventPtr& event);

/// The first value of attribute `key` among the primitive constituents
/// in detection order, or nullopt.
std::optional<AttributeValue> FindParam(const EventPtr& event,
                                        std::string_view key);

/// The last (most recent constituent's) value of `key`, or nullopt.
std::optional<AttributeValue> FindLastParam(const EventPtr& event,
                                            std::string_view key);

/// The first primitive constituent of the given event type underneath
/// `event`, or nullptr — e.g. "the withdraw inside this sequence".
EventPtr FindConstituent(const EventPtr& event, EventTypeId type);

/// All primitive constituents of the given type, in detection order.
std::vector<EventPtr> FindConstituents(const EventPtr& event,
                                       EventTypeId type);

/// Sum of `key` over all primitive constituents holding an integer value
/// under that key (useful for cumulative occurrences: "total volume of
/// the accumulated trades").
int64_t SumIntParam(const EventPtr& event, std::string_view key);

/// Human-readable one-line rendering of an occurrence: type names from
/// `registry`, constituent sites and parameters. For logs and CLIs.
std::string DescribeOccurrence(const EventPtr& event,
                               const EventTypeRegistry& registry);

}  // namespace sentineld

#endif  // SENTINELD_EVENT_PARAMS_H_
