#include "event/arena.h"

#include <mutex>
#include <new>
#include <vector>

#include "event/event.h"
#include "util/logging.h"

namespace sentineld {
namespace {

/// Blocks are Event-sized (the only client); a freed block doubles as a
/// free-list link.
constexpr size_t kBlockSize = sizeof(Event);
static_assert(kBlockSize >= sizeof(void*));
static_assert(alignof(Event) <= alignof(std::max_align_t),
              "slabs from ::operator new are max_align-aligned");

constexpr size_t kBlocksPerSlab = 256;
/// Blocks moved global -> local per refill.
constexpr size_t kRefillBatch = 64;
/// Local cache bound; Free spills half past this.
constexpr size_t kLocalMax = 1024;

struct FreeBlock {
  FreeBlock* next;
};

struct GlobalPool {
  std::mutex mu;
  FreeBlock* free_list = nullptr;
  /// Slab ownership: never freed, so blocks stay valid (and reachable
  /// for leak checkers) through static teardown.
  std::vector<void*> slabs;
};

GlobalPool& Pool() {
  // Never destroyed: thread caches flush into it at thread exit, which
  // can happen after static destructors start running.
  static GlobalPool* pool = new GlobalPool();
  return *pool;
}

struct LocalCache {
  FreeBlock* head = nullptr;
  size_t count = 0;

  ~LocalCache() {
    // Flush everything back so blocks survive this thread's exit.
    if (head == nullptr) return;
    FreeBlock* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    GlobalPool& pool = Pool();
    std::lock_guard<std::mutex> lock(pool.mu);
    tail->next = pool.free_list;
    pool.free_list = head;
    head = nullptr;
    count = 0;
  }
};

LocalCache& Cache() {
  thread_local LocalCache cache;
  return cache;
}

/// Refills `cache` from the global pool, carving a new slab if the pool
/// itself is dry. Called with an empty local cache.
void Refill(LocalCache& cache) {
  GlobalPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  for (size_t i = 0; i < kRefillBatch && pool.free_list != nullptr; ++i) {
    FreeBlock* block = pool.free_list;
    pool.free_list = block->next;
    block->next = cache.head;
    cache.head = block;
    ++cache.count;
  }
  if (cache.head != nullptr) return;
  char* slab = static_cast<char*>(::operator new(kBlockSize * kBlocksPerSlab));
  pool.slabs.push_back(slab);
  for (size_t i = 0; i < kBlocksPerSlab; ++i) {
    auto* block = reinterpret_cast<FreeBlock*>(slab + i * kBlockSize);
    block->next = cache.head;
    cache.head = block;
  }
  cache.count = kBlocksPerSlab;
}

}  // namespace

void* EventArena::Allocate() {
  LocalCache& cache = Cache();
  if (cache.head == nullptr) Refill(cache);
  FreeBlock* block = cache.head;
  cache.head = block->next;
  --cache.count;
  return block;
}

void EventArena::Free(void* ptr) noexcept {
  LocalCache& cache = Cache();
  auto* block = static_cast<FreeBlock*>(ptr);
  block->next = cache.head;
  cache.head = block;
  if (++cache.count < kLocalMax) return;
  // Spill half to the global pool so a consumer thread that only frees
  // (the ParallelDetector drain side) recirculates blocks to producers.
  FreeBlock* keep_tail = cache.head;
  for (size_t i = 1; i < kLocalMax / 2; ++i) keep_tail = keep_tail->next;
  FreeBlock* spill = keep_tail->next;
  keep_tail->next = nullptr;
  cache.count = kLocalMax / 2;
  FreeBlock* spill_tail = spill;
  while (spill_tail->next != nullptr) spill_tail = spill_tail->next;
  GlobalPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  spill_tail->next = pool.free_list;
  pool.free_list = spill;
}

EventArena::Stats EventArena::GlobalStats() {
  GlobalPool& pool = Pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  return Stats{pool.slabs.size(), kBlocksPerSlab};
}

}  // namespace sentineld
