#ifndef SENTINELD_EVENT_TRACE_IO_H_
#define SENTINELD_EVENT_TRACE_IO_H_

#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "event/generator.h"
#include "event/registry.h"
#include "util/status.h"

namespace sentineld {

/// Line-oriented text format for event traces, so workloads can be
/// captured, versioned, and replayed deterministically:
///
///   # sentineld trace v1
///   event <when_ns> <site> <type_name> [<key>=<typed-value> ...]
///
/// Typed values: `i:<int>`, `d:<double>`, `b:true|false`,
/// `s:<percent-encoded string>` (space, '%', '=', and newline are
/// percent-encoded). Lines starting with '#' and blank lines are ignored.

/// Writes `plan` as a v1 trace. Type ids are resolved to names through
/// `registry` (unknown ids are an InvalidArgument).
Status WriteTrace(std::ostream& os, std::span<const PlannedEvent> plan,
                  const EventTypeRegistry& registry);

/// Parses a v1 trace. Event names are looked up in `registry`;
/// unknown names are registered as kExplicit types when `auto_register`,
/// and a NotFound error otherwise. Events are returned in file order.
Result<std::vector<PlannedEvent>> ReadTrace(std::istream& is,
                                            EventTypeRegistry& registry,
                                            bool auto_register = false);

/// Percent-encodes/decodes the string payloads (exposed for tests).
std::string PercentEncode(std::string_view raw);
Result<std::string> PercentDecode(const std::string& encoded);

}  // namespace sentineld

#endif  // SENTINELD_EVENT_TRACE_IO_H_
