#ifndef SENTINELD_EVENT_EVENT_H_
#define SENTINELD_EVENT_EVENT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "timestamp/composite_timestamp.h"
#include "util/checked.h"
#include "util/small_vector.h"

namespace sentineld {

/// Identifier of a registered event type (primitive or composite).
using EventTypeId = uint32_t;

/// Identifier of an interned attribute name (see NameTable in
/// event/registry.h). Dense, process-wide, never recycled; id 0 is the
/// empty string.
using NameId = uint32_t;

/// The classes of primitive events Sentinel distinguishes (paper Sec. 2 /
/// Sec. 3.1: data-manipulation, transaction, explicit/abstract and time
/// events). The class matters for the simultaneity assumptions of
/// Sec. 3.1 (e.g. no two database events happen simultaneously) and for
/// workload generation; detection semantics are uniform across classes.
enum class EventClass {
  kDatabase,     ///< data-manipulation events (insert/update/delete/...)
  kTransaction,  ///< begin/commit/abort events
  kExplicit,     ///< application-raised events
  kTemporal,     ///< clock-generated events (absolute or periodic)
  kAbstract,     ///< external events registered by other systems
  kComposite,    ///< events defined by a Snoop expression
};

const char* EventClassToString(EventClass c);

/// A typed attribute value carried in an event's parameter list.
class AttributeValue {
 public:
  AttributeValue() : value_(int64_t{0}) {}
  explicit AttributeValue(int64_t v) : value_(v) {}
  explicit AttributeValue(double v) : value_(v) {}
  explicit AttributeValue(bool v) : value_(v) {}
  explicit AttributeValue(std::string v) : value_(std::move(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }

  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }

  std::string ToString() const;

  friend bool operator==(const AttributeValue&,
                         const AttributeValue&) = default;

 private:
  std::variant<int64_t, double, bool, std::string> value_;
};

/// One named attribute of an event occurrence. The name is carried as an
/// interned NameId so building and comparing parameters on the hot path
/// never touches strings; `name()` resolves through the process-wide
/// NameTable at rendering/wire boundaries only.
struct Param {
  Param() = default;
  /// Interns `name` (allocation-free once the name has been seen).
  Param(std::string_view name, AttributeValue value);
  Param(NameId name_id, AttributeValue value)
      : name_id(name_id), value(std::move(value)) {}

  /// The attribute name, resolved from the NameTable. The view stays
  /// valid for the process lifetime.
  std::string_view name() const;

  NameId name_id = 0;
  AttributeValue value;

  friend bool operator==(const Param&, const Param&) = default;
};

/// Named attributes of one event occurrence, in declaration order. Two
/// inline slots: most occurrences carry 0-2 attributes, so parameter
/// lists ride inside the Event without a heap block.
using ParameterList = SmallVector<Param, 2>;

class Event;

/// Intrusive reference-counted handle to an immutable occurrence — the
/// drop-in replacement for the previous shared_ptr<const Event> alias
/// (docs/memory.md). Events are shared by the detector graph (an
/// occurrence can participate in many partial detections at once) and
/// cross threads through the ParallelDetector's queues, so the count is
/// atomic; the count lives inside the Event (no separate control block)
/// and storage comes from the event arena.
class EventPtr {
 public:
  EventPtr() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors shared_ptr.
  EventPtr(std::nullptr_t) {}

  EventPtr(const EventPtr& other) noexcept;
  EventPtr(EventPtr&& other) noexcept : ptr_(other.ptr_) {
    other.ptr_ = nullptr;
  }
  EventPtr& operator=(const EventPtr& other) noexcept;
  EventPtr& operator=(EventPtr&& other) noexcept;
  ~EventPtr();

  const Event* get() const { return ptr_; }
  const Event& operator*() const { return *ptr_; }
  const Event* operator->() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }
  void reset();

  friend bool operator==(const EventPtr& a, const EventPtr& b) {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator==(const EventPtr& a, std::nullptr_t) {
    return a.ptr_ == nullptr;
  }

 private:
  friend class Event;
  /// Adopts an event whose reference count is already 1 (factories).
  explicit EventPtr(const Event* adopted) : ptr_(adopted) {}

  const Event* ptr_ = nullptr;
};

/// One event occurrence — primitive or composite (paper Sec. 5.3: "a
/// distributed event E is a function from the time stamp domain onto the
/// boolean values"; an Event object is a witness of one `True` point of
/// that function).
///
/// A primitive occurrence has a singleton composite timestamp (its
/// primitive stamp lifted via CompositeTimestamp::FromSingle) and no
/// constituents. A composite occurrence's timestamp is the Max over its
/// constituents' timestamps, and its constituents record the occurrences
/// that made it fire (the operands Snoop's parameter computation uses).
///
/// Memory model (docs/memory.md): occurrences are allocated from a slab
/// arena with per-thread block caches and carry an intrusive atomic
/// refcount, so a steady-state primitive feed — singleton timestamp
/// inline, interned parameter names inline, recycled arena block — does
/// not touch the heap at all.
class Event {
 public:
  /// Inline capacity 2: the overwhelmingly common composites are the
  /// binary operators' pairs (and OR's singleton re-typing).
  using ConstituentVec = SmallVector<EventPtr, 2>;

  /// Creates a primitive occurrence.
  static EventPtr MakePrimitive(EventTypeId type,
                                const PrimitiveTimestamp& stamp,
                                ParameterList params = {});

  /// Creates a composite occurrence of `type` from its constituent
  /// occurrences; the timestamp is the Max fold over the constituents'
  /// timestamps (Sec. 5.2's propagation rule).
  static EventPtr MakeComposite(EventTypeId type,
                                std::span<const EventPtr> constituents);
  static EventPtr MakeComposite(EventTypeId type,
                                std::initializer_list<EventPtr> constituents);
  static EventPtr MakeComposite(EventTypeId type,
                                std::vector<EventPtr> constituents);

  EventTypeId type() const { return type_; }
  /// The occurrence (completion) timestamp — the paper's T(e), the Max
  /// over constituents.
  const CompositeTimestamp& timestamp() const { return timestamp_; }
  /// When the occurrence STARTED: the minima over all constituent
  /// primitive stamps (equals timestamp() for primitive events). Drives
  /// the interval-semantics detection policy (see snoop/context.h).
  const CompositeTimestamp& interval_start() const { return start_; }
  const ParameterList& params() const { return params_; }
  std::span<const EventPtr> constituents() const {
    return {constituents_.data(), constituents_.size()};
  }
  bool is_primitive() const { return constituents_.empty(); }

  /// Process-unique occurrence id, assigned at construction. Identity
  /// maps must key on this rather than the Event's address: the arena
  /// recycles blocks aggressively, so addresses alias across the
  /// lifetimes of distinct occurrences.
  uint64_t uid() const { return uid_; }

  /// The site where a PRIMITIVE occurrence happened. Calling this on a
  /// composite is a contract violation (checked builds assert): a
  /// composite spans sites. Composite callers wanting the canonical
  /// representative site should say PrimarySite().
  SiteId site() const {
    SENTINELD_ASSERT(is_primitive());
    return timestamp_.stamps().front().site;
  }

  /// The site of the canonically-first maximal stamp — a deterministic
  /// representative site for any occurrence. For primitives this equals
  /// site(); for composites it is merely a stable label (e.g. for
  /// sharding or display), NOT "the" site of the occurrence.
  SiteId PrimarySite() const { return timestamp_.stamps().front().site; }

  /// "type@{stamps}" plus nested constituents, for logs and tests.
  std::string ToString() const;

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

 private:
  friend class EventPtr;

  Event(EventTypeId type, CompositeTimestamp timestamp,
        CompositeTimestamp start, ParameterList params,
        ConstituentVec constituents);
  ~Event() = default;

  /// Shared fold over a built constituent list (both MakeComposite
  /// overloads land here).
  static EventPtr MakeCompositeFrom(EventTypeId type, ConstituentVec kept);

  /// Arena-backed storage (event/arena.h): blocks are recycled through
  /// per-thread caches, so steady-state construction is heap-free.
  static void* operator new(size_t size);
  static void operator delete(void* ptr) noexcept;

  void Retain() const noexcept {
    refs_.fetch_add(1, std::memory_order_relaxed);
  }
  void Release() const noexcept {
    // acq_rel: the last release must observe every other thread's final
    // use of the object before the destructor runs.
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  EventTypeId type_;
  /// Intrusive reference count (mutable: EventPtr holds const Event*).
  mutable std::atomic<uint32_t> refs_;
  uint64_t uid_;
  CompositeTimestamp timestamp_;
  CompositeTimestamp start_;
  ParameterList params_;
  ConstituentVec constituents_;
};

inline EventPtr::EventPtr(const EventPtr& other) noexcept
    : ptr_(other.ptr_) {
  if (ptr_ != nullptr) ptr_->Retain();
}

inline EventPtr& EventPtr::operator=(const EventPtr& other) noexcept {
  // Retain-before-release makes self-assignment safe.
  if (other.ptr_ != nullptr) other.ptr_->Retain();
  if (ptr_ != nullptr) ptr_->Release();
  ptr_ = other.ptr_;
  return *this;
}

inline EventPtr& EventPtr::operator=(EventPtr&& other) noexcept {
  if (this != &other) {
    if (ptr_ != nullptr) ptr_->Release();
    ptr_ = other.ptr_;
    other.ptr_ = nullptr;
  }
  return *this;
}

inline EventPtr::~EventPtr() {
  if (ptr_ != nullptr) ptr_->Release();
}

inline void EventPtr::reset() {
  if (ptr_ != nullptr) ptr_->Release();
  ptr_ = nullptr;
}

std::ostream& operator<<(std::ostream& os, const Event& event);

/// Recursively collects the primitive occurrences underneath `event` in
/// depth-first (detection) order; a primitive event yields itself.
void CollectPrimitives(const EventPtr& event, std::vector<EventPtr>& out);

}  // namespace sentineld

#endif  // SENTINELD_EVENT_EVENT_H_
