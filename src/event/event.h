#ifndef SENTINELD_EVENT_EVENT_H_
#define SENTINELD_EVENT_EVENT_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "timestamp/composite_timestamp.h"

namespace sentineld {

/// Identifier of a registered event type (primitive or composite).
using EventTypeId = uint32_t;

/// The classes of primitive events Sentinel distinguishes (paper Sec. 2 /
/// Sec. 3.1: data-manipulation, transaction, explicit/abstract and time
/// events). The class matters for the simultaneity assumptions of
/// Sec. 3.1 (e.g. no two database events happen simultaneously) and for
/// workload generation; detection semantics are uniform across classes.
enum class EventClass {
  kDatabase,     ///< data-manipulation events (insert/update/delete/...)
  kTransaction,  ///< begin/commit/abort events
  kExplicit,     ///< application-raised events
  kTemporal,     ///< clock-generated events (absolute or periodic)
  kAbstract,     ///< external events registered by other systems
  kComposite,    ///< events defined by a Snoop expression
};

const char* EventClassToString(EventClass c);

/// A typed attribute value carried in an event's parameter list.
class AttributeValue {
 public:
  AttributeValue() : value_(int64_t{0}) {}
  explicit AttributeValue(int64_t v) : value_(v) {}
  explicit AttributeValue(double v) : value_(v) {}
  explicit AttributeValue(bool v) : value_(v) {}
  explicit AttributeValue(std::string v) : value_(std::move(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }

  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }

  std::string ToString() const;

  friend bool operator==(const AttributeValue&,
                         const AttributeValue&) = default;

 private:
  std::variant<int64_t, double, bool, std::string> value_;
};

/// Named attributes of one event occurrence, in declaration order.
using ParameterList = std::vector<std::pair<std::string, AttributeValue>>;

class Event;
/// Events are immutable once constructed and shared by the detector graph
/// (an occurrence can participate in many partial detections at once).
using EventPtr = std::shared_ptr<const Event>;

/// One event occurrence — primitive or composite (paper Sec. 5.3: "a
/// distributed event E is a function from the time stamp domain onto the
/// boolean values"; an Event object is a witness of one `True` point of
/// that function).
///
/// A primitive occurrence has a singleton composite timestamp (its
/// primitive stamp lifted via CompositeTimestamp::FromSingle) and no
/// constituents. A composite occurrence's timestamp is the Max over its
/// constituents' timestamps, and its constituents record the occurrences
/// that made it fire (the operands Snoop's parameter computation uses).
class Event {
 public:
  /// Creates a primitive occurrence.
  static EventPtr MakePrimitive(EventTypeId type,
                                const PrimitiveTimestamp& stamp,
                                ParameterList params = {});

  /// Creates a composite occurrence of `type` from its constituent
  /// occurrences; the timestamp is MaxAll over the constituents'
  /// timestamps (Sec. 5.2's propagation rule).
  static EventPtr MakeComposite(EventTypeId type,
                                std::vector<EventPtr> constituents);

  EventTypeId type() const { return type_; }
  /// The occurrence (completion) timestamp — the paper's T(e), the Max
  /// over constituents.
  const CompositeTimestamp& timestamp() const { return timestamp_; }
  /// When the occurrence STARTED: the minima over all constituent
  /// primitive stamps (equals timestamp() for primitive events). Drives
  /// the interval-semantics detection policy (see snoop/context.h).
  const CompositeTimestamp& interval_start() const { return start_; }
  const ParameterList& params() const { return params_; }
  const std::vector<EventPtr>& constituents() const { return constituents_; }
  bool is_primitive() const { return constituents_.empty(); }

  /// For a primitive occurrence: the site where it occurred.
  SiteId site() const { return timestamp_.stamps().front().site; }

  /// "type@{stamps}" plus nested constituents, for logs and tests.
  std::string ToString() const;

 private:
  Event(EventTypeId type, CompositeTimestamp timestamp,
        CompositeTimestamp start, ParameterList params,
        std::vector<EventPtr> constituents)
      : type_(type),
        timestamp_(std::move(timestamp)),
        start_(std::move(start)),
        params_(std::move(params)),
        constituents_(std::move(constituents)) {}

  EventTypeId type_;
  CompositeTimestamp timestamp_;
  CompositeTimestamp start_;
  ParameterList params_;
  std::vector<EventPtr> constituents_;

  // shared_ptr construction goes through the factories.
  friend struct EventFactoryAccess;
};

std::ostream& operator<<(std::ostream& os, const Event& event);

/// Recursively collects the primitive occurrences underneath `event` in
/// depth-first (detection) order; a primitive event yields itself.
void CollectPrimitives(const EventPtr& event, std::vector<EventPtr>& out);

}  // namespace sentineld

#endif  // SENTINELD_EVENT_EVENT_H_
