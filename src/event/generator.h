#ifndef SENTINELD_EVENT_GENERATOR_H_
#define SENTINELD_EVENT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "event/event.h"
#include "timebase/config.h"
#include "util/random.h"
#include "util/status.h"

namespace sentineld {

/// One planned primitive-event occurrence in a synthetic workload: where
/// and when (in reference time) an event of which type fires, plus its
/// parameters. The clock fleet converts `when` into the site's primitive
/// timestamp at injection time — the generator itself never sees local
/// clocks, mirroring how real sources are oblivious to synchronization.
struct PlannedEvent {
  TrueTimeNs when = 0;
  SiteId site = 0;
  EventTypeId type = 0;
  ParameterList params;
};

/// Parameters of the synthetic workload generator. This is the
/// substitution (DESIGN.md Sec. 3) for Sentinel's real DB/transaction
/// event sources: a stream of typed primitive events at configurable
/// rates, type skew, and site distribution.
struct WorkloadConfig {
  uint32_t num_sites = 4;
  /// Event types to draw from; the generator assumes ids [0, num_types).
  uint32_t num_types = 8;
  /// Mean inter-arrival time between consecutive events across the whole
  /// system (exponential arrivals — Poisson process).
  int64_t mean_interarrival_ns = 50'000'000;
  /// Total events to generate.
  size_t num_events = 1000;
  /// Zipf skew over event types (0 = uniform).
  double type_skew = 0.0;
  /// Zipf skew over sites (0 = uniform).
  double site_skew = 0.0;
  /// Start of the workload in reference time.
  TrueTimeNs start = 1'000'000'000;

  Status Validate() const;
};

/// Generates a time-ordered plan of primitive events (Poisson arrivals,
/// optionally Zipf-skewed over types and sites). Deterministic given the
/// Rng seed.
std::vector<PlannedEvent> GenerateWorkload(const WorkloadConfig& config,
                                           Rng& rng);

/// Generates a "scenario burst": `count` events of the given type spread
/// over `span_ns` starting at `start`, round-robin over `sites`. Useful
/// for hand-built tests and the examples.
std::vector<PlannedEvent> GenerateBurst(EventTypeId type,
                                        const std::vector<SiteId>& sites,
                                        TrueTimeNs start, int64_t span_ns,
                                        size_t count);

/// Merges plans by time (stable for equal times).
std::vector<PlannedEvent> MergePlans(std::vector<PlannedEvent> a,
                                     std::vector<PlannedEvent> b);

}  // namespace sentineld

#endif  // SENTINELD_EVENT_GENERATOR_H_
